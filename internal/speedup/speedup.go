// Package speedup implements the parallel speedup laws underlying the
// C²-Bound model: Amdahl's law, Gustafson's law and their generalization,
// Sun-Ni's memory-bounded law (Eq. 4 of the paper), together with the
// problem-size scale function g(N) and its derivation from an
// application's computation and memory complexity (§II-B, Table I).
package speedup

import (
	"errors"
	"fmt"
	"math"
)

// ErrBadParam is the sentinel wrapped by the checked speedup laws when an
// argument is NaN/Inf or outside its physical range (fseq ∉ [0,1],
// N ≤ 0). The unchecked laws propagate whatever the arithmetic yields.
var ErrBadParam = errors.New("speedup: invalid parameter")

// ValidateArgs rejects the argument combinations that would silently
// propagate NaN through Eq. 2/4: non-finite or out-of-range fseq, and a
// non-positive or non-finite core count.
func ValidateArgs(fseq, n float64) error {
	if math.IsNaN(fseq) || fseq < 0 || fseq > 1 {
		return fmt.Errorf("%w: fseq=%v outside [0,1]", ErrBadParam, fseq)
	}
	if math.IsNaN(n) || math.IsInf(n, 0) || n <= 0 {
		return fmt.Errorf("%w: N=%v must be positive and finite", ErrBadParam, n)
	}
	return nil
}

// ScaleFunc is the problem-size scale function g(N) of Sun-Ni's law: the
// factor by which the problem size grows when the memory capacity grows N
// times. Every ScaleFunc must satisfy g(1) = 1.
type ScaleFunc func(N float64) float64

// FixedSize returns g(N) = 1: the problem size does not scale with memory.
// Sun-Ni's law with FixedSize is exactly Amdahl's law.
func FixedSize() ScaleFunc { return func(float64) float64 { return 1 } }

// Linear returns g(N) = N: the problem size scales with memory capacity.
// Sun-Ni's law with Linear is exactly Gustafson's law.
func Linear() ScaleFunc { return func(N float64) float64 { return N } }

// PowerLaw returns g(N) = N^b. For any power-law memory-to-work relation
// W = h(M) = a·M^b the paper shows g(N) = N^b; b = 3/2 is the dense
// matrix-multiplication case worked in §II-B.
func PowerLaw(b float64) ScaleFunc {
	return func(N float64) float64 { return math.Pow(N, b) }
}

// Complexity is a monotone nondecreasing cost function of the problem
// dimension n (e.g. computation operations or memory words).
type Complexity func(n float64) float64

// FromComplexity derives g(N) numerically from an application's
// computation complexity W(n) and memory complexity M(n), following the
// paper's construction: with W = h(M), g(N) = h(N·M0)/h(M0), where
// M0 = M(n0) is the memory footprint at the base problem dimension n0.
// The inverse h⁻¹ is evaluated by bisection, so M must be strictly
// increasing over [n0, hugeN·n0]. FromComplexity returns an error if the
// complexities are non-positive or non-monotone at n0.
func FromComplexity(compute, memory Complexity, n0 float64) (ScaleFunc, error) {
	if n0 <= 0 {
		return nil, fmt.Errorf("speedup: base dimension n0=%v must be positive", n0)
	}
	w0, m0 := compute(n0), memory(n0)
	if !(w0 > 0) || !(m0 > 0) {
		return nil, fmt.Errorf("speedup: complexities must be positive at n0 (W=%v, M=%v)", w0, m0)
	}
	if memory(n0*1.001) <= m0 || compute(n0*1.001) < w0 {
		return nil, fmt.Errorf("speedup: complexities must be nondecreasing near n0")
	}
	return func(N float64) float64 {
		if N <= 1 {
			return 1
		}
		target := N * m0
		// Bisection for n' with M(n') = N·M0. Upper bracket grows
		// geometrically from n0.
		lo, hi := n0, n0*2
		for memory(hi) < target {
			hi *= 2
			if hi > n0*1e18 {
				break
			}
		}
		for i := 0; i < 200 && hi-lo > 1e-12*hi; i++ {
			mid := 0.5 * (lo + hi)
			if memory(mid) < target {
				lo = mid
			} else {
				hi = mid
			}
		}
		return compute(0.5*(lo+hi)) / w0
	}, nil
}

// Amdahl returns the fixed-size speedup 1 / (fseq + (1−fseq)/N).
func Amdahl(fseq float64, N float64) float64 {
	return 1 / (fseq + (1-fseq)/N)
}

// AmdahlChecked is Amdahl with argument validation: it returns a wrapped
// ErrBadParam instead of propagating NaN for out-of-range inputs.
func AmdahlChecked(fseq, N float64) (float64, error) {
	if err := ValidateArgs(fseq, N); err != nil {
		return math.NaN(), err
	}
	return Amdahl(fseq, N), nil
}

// Gustafson returns the scaled speedup fseq + (1−fseq)·N.
func Gustafson(fseq float64, N float64) float64 {
	return fseq + (1-fseq)*N
}

// GustafsonChecked is Gustafson with argument validation (see
// AmdahlChecked).
func GustafsonChecked(fseq, N float64) (float64, error) {
	if err := ValidateArgs(fseq, N); err != nil {
		return math.NaN(), err
	}
	return Gustafson(fseq, N), nil
}

// SunNi returns the memory-bounded speedup of Eq. 4:
//
//	S(N) = (fseq + (1−fseq)·g(N)) / (fseq + (1−fseq)·g(N)/N)
//
// With g = FixedSize it equals Amdahl; with g = Linear it equals
// Gustafson.
func SunNi(fseq float64, g ScaleFunc, N float64) float64 {
	gn := g(N)
	return (fseq + (1-fseq)*gn) / (fseq + (1-fseq)*gn/N)
}

// SunNiChecked is SunNi with argument validation: besides the fseq/N
// range checks it rejects a nil scale function and a g(N) that is not
// finite and positive, so Eq. 4 never silently returns NaN.
func SunNiChecked(fseq float64, g ScaleFunc, N float64) (float64, error) {
	if err := ValidateArgs(fseq, N); err != nil {
		return math.NaN(), err
	}
	if g == nil {
		return math.NaN(), fmt.Errorf("%w: scale function g(N) is nil", ErrBadParam)
	}
	gn := g(N)
	if math.IsNaN(gn) || math.IsInf(gn, 0) || gn <= 0 {
		return math.NaN(), fmt.Errorf("%w: g(%v)=%v must be positive and finite", ErrBadParam, N, gn)
	}
	return SunNi(fseq, g, N), nil
}

// GrowthOrder classifies a scale function against O(N), the regime
// boundary of the C²-Bound optimization (§III-C). It estimates the local
// elasticity d(log g)/d(log N) at refN via a centered finite difference.
// Values < 1 mean g(N) < O(N) (an optimal finite core count minimizing T
// exists); values ≥ 1 mean g(N) ≥ O(N) (optimize throughput W/T instead).
func GrowthOrder(g ScaleFunc, refN float64) float64 {
	if refN < 2 {
		refN = 2
	}
	h := 0.01
	lo, hi := refN*(1-h), refN*(1+h)
	glo, ghi := g(lo), g(hi)
	if !(glo > 0) || !(ghi > 0) {
		return 0
	}
	order := (math.Log(ghi) - math.Log(glo)) / (math.Log(hi) - math.Log(lo))
	if math.IsNaN(order) || math.IsInf(order, 0) {
		// A pathological scale function (overflowing or constant-zero
		// slope at extreme refN) must not leak NaN/Inf into the regime
		// classification; order 0 falls back to the sublinear branch.
		return 0
	}
	return order
}

// Superlinear reports whether g grows at least linearly (g(N) ≥ O(N)) at
// the reference scale, with a small tolerance for numerical derivation.
func Superlinear(g ScaleFunc, refN float64) bool {
	return GrowthOrder(g, refN) >= 1-1e-6
}
