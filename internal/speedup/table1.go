package speedup

import "math"

// Table1Row is one row of Table I in the paper: an application's
// computation complexity, memory complexity, and the resulting problem
// size scale function g(N).
type Table1Row struct {
	Application string
	Computation string // complexity in the paper's notation
	Memory      string
	GFormula    string    // g(N) as printed in Table I
	Scale       ScaleFunc // executable g(N)
	// Order is the asymptotic elasticity of g (exponent b for power laws),
	// used by the regime classification.
	Order float64
}

// Table1 returns the executable form of Table I. The FFT row follows the
// paper's printed value g(N) = 2N, which corresponds to evaluating the
// derived g(N) = N·(1 + log N / log n) at the point N = n (scale factor
// equal to the base dimension); the Scale function implements the general
// derived form with base dimension fftBaseN and therefore passes exactly
// through 2N at N = fftBaseN.
func Table1(fftBaseN float64) []Table1Row {
	if fftBaseN <= 1 {
		fftBaseN = 1 << 20
	}
	fft := func(N float64) float64 {
		if N <= 1 {
			return 1
		}
		// W = n·log2(n), M = n ⇒ n' = N·n ⇒
		// g = (N·n·log2(N·n)) / (n·log2 n) = N(1 + log2 N / log2 n).
		return N * (1 + math.Log2(N)/math.Log2(fftBaseN))
	}
	return []Table1Row{
		{
			Application: "TMM (tiled matrix multiplication)",
			Computation: "N^3", Memory: "N^2", GFormula: "N^{3/2}",
			Scale: PowerLaw(1.5), Order: 1.5,
		},
		{
			Application: "Band sparse matrix multiplication",
			Computation: "N", Memory: "N", GFormula: "N",
			Scale: Linear(), Order: 1,
		},
		{
			Application: "Stencil",
			Computation: "N", Memory: "N", GFormula: "N",
			Scale: Linear(), Order: 1,
		},
		{
			Application: "FFT (fast Fourier transform)",
			Computation: "N·log2(N)", Memory: "N", GFormula: "2N",
			Scale: fft, Order: 1,
		},
	}
}

// DenseMM returns the worked §II-B example: dense matrix multiplication
// with W = 2n³ and M = 3n², for which h(M) = (2M/3)^{3/2} and
// g(N) = N^{3/2}.
func DenseMM() (compute, memory Complexity) {
	return func(n float64) float64 { return 2 * n * n * n },
		func(n float64) float64 { return 3 * n * n }
}
