package dse

import (
	"os"
	"path/filepath"
	"testing"
)

// tinySpace returns a 2-point space for checkpoint tests.
func tinySpace(t *testing.T) Space {
	t.Helper()
	s, err := NewSpace(
		Param{Name: "x", Values: []float64{1, 2}},
	)
	if err != nil {
		t.Fatalf("space: %v", err)
	}
	return s
}

// TestSaveCheckpointDurable is the regression test for the fsync fix:
// the rename must be the last visible step — no temp file may survive a
// successful save — and the published file must load back exactly, both
// on first write and when overwriting an existing checkpoint (the
// crash-consistency property itself needs a power cut to observe; what
// the test pins is the write → sync → rename → dir-sync sequence
// completing and leaving only the final file).
func TestSaveCheckpointDurable(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ck.json")
	s := tinySpace(t)

	if err := SaveCheckpoint(path, s, []float64{3.5, 7.25}, []int{0, 1}); err != nil {
		t.Fatalf("save: %v", err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file survived the save: %v", err)
	}
	ck, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(ck.Indices) != 2 || ck.Values[0] != 3.5 || ck.Values[1] != 7.25 {
		t.Fatalf("loaded %+v", ck)
	}

	// Overwrite: the second save replaces the first atomically.
	if err := SaveCheckpoint(path, s, []float64{9, 7.25}, []int{0}); err != nil {
		t.Fatalf("overwrite: %v", err)
	}
	ck, err = LoadCheckpoint(path)
	if err != nil {
		t.Fatalf("reload: %v", err)
	}
	if len(ck.Indices) != 1 || ck.Indices[0] != 0 || ck.Values[0] != 9 {
		t.Fatalf("overwrite loaded %+v", ck)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file survived the overwrite: %v", err)
	}
}

// TestSaveCheckpointCreatesParentDir covers the nested-directory path of
// the durable save (MkdirAll before the synced write).
func TestSaveCheckpointCreatesParentDir(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a", "b", "ck.json")
	if err := SaveCheckpoint(path, tinySpace(t), []float64{1, 2}, []int{1}); err != nil {
		t.Fatalf("save into nested dir: %v", err)
	}
	ck, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(ck.Indices) != 1 || ck.Indices[0] != 1 || ck.Values[0] != 2 {
		t.Fatalf("loaded %+v", ck)
	}
}

// TestWriteFileSyncReportsWriteErrors pins the error path: a directory
// target must fail at open, not be swallowed by the sync sequence.
func TestWriteFileSyncReportsWriteErrors(t *testing.T) {
	dir := t.TempDir()
	if err := writeFileSync(dir, []byte("x")); err == nil {
		t.Fatalf("writing over a directory succeeded")
	}
}
