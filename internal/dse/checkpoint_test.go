package dse

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// tinySpace returns a 2-point space for checkpoint tests.
func tinySpace(t *testing.T) Space {
	t.Helper()
	s, err := NewSpace(
		Param{Name: "x", Values: []float64{1, 2}},
	)
	if err != nil {
		t.Fatalf("space: %v", err)
	}
	return s
}

// TestSaveCheckpointDurable is the regression test for the fsync fix:
// the rename must be the last visible step — no temp file may survive a
// successful save — and the published file must load back exactly, both
// on first write and when overwriting an existing checkpoint (the
// crash-consistency property itself needs a power cut to observe; what
// the test pins is the write → sync → rename → dir-sync sequence
// completing and leaving only the final file).
func TestSaveCheckpointDurable(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ck.json")
	s := tinySpace(t)

	if err := SaveCheckpoint(path, s, []float64{3.5, 7.25}, []int{0, 1}); err != nil {
		t.Fatalf("save: %v", err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file survived the save: %v", err)
	}
	ck, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(ck.Indices) != 2 || ck.Values[0] != 3.5 || ck.Values[1] != 7.25 {
		t.Fatalf("loaded %+v", ck)
	}

	// Overwrite: the second save replaces the first atomically.
	if err := SaveCheckpoint(path, s, []float64{9, 7.25}, []int{0}); err != nil {
		t.Fatalf("overwrite: %v", err)
	}
	ck, err = LoadCheckpoint(path)
	if err != nil {
		t.Fatalf("reload: %v", err)
	}
	if len(ck.Indices) != 1 || ck.Indices[0] != 0 || ck.Values[0] != 9 {
		t.Fatalf("overwrite loaded %+v", ck)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file survived the overwrite: %v", err)
	}
}

// TestSaveCheckpointCreatesParentDir covers the nested-directory path of
// the durable save (MkdirAll before the synced write).
func TestSaveCheckpointCreatesParentDir(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a", "b", "ck.json")
	if err := SaveCheckpoint(path, tinySpace(t), []float64{1, 2}, []int{1}); err != nil {
		t.Fatalf("save into nested dir: %v", err)
	}
	ck, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(ck.Indices) != 1 || ck.Indices[0] != 1 || ck.Values[0] != 2 {
		t.Fatalf("loaded %+v", ck)
	}
}

// TestSaveCheckpointReportsWriteErrors pins the error path: a target
// whose parent cannot be a directory must fail at the temp-file stage,
// not be swallowed by the sync sequence.
func TestSaveCheckpointReportsWriteErrors(t *testing.T) {
	dir := t.TempDir()
	blocker := filepath.Join(dir, "not-a-dir")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatalf("seed blocker file: %v", err)
	}
	path := filepath.Join(blocker, "ck.json")
	if err := SaveCheckpoint(path, tinySpace(t), []float64{1, 2}, []int{1}); err == nil {
		t.Fatalf("saving under a file-as-directory succeeded")
	}
}

// TestSaveCheckpointConcurrentSavers is the regression test for the
// temp-file collision: with a fixed "<path>.tmp" name, two concurrent
// savers could rename each other's half-written bytes into place. With
// unique temp files, every interleaving publishes some complete
// checkpoint, and no temp debris survives.
func TestSaveCheckpointConcurrentSavers(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ck.json")
	s := tinySpace(t)

	const savers = 8
	const rounds = 20
	var wg sync.WaitGroup
	for i := 0; i < savers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Each saver writes its own recognizable payload.
			v := float64(i)
			for r := 0; r < rounds; r++ {
				if err := SaveCheckpoint(path, s, []float64{v, v}, []int{0, 1}); err != nil {
					t.Errorf("saver %d round %d: %v", i, r, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()

	ck, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatalf("load after concurrent saves: %v", err)
	}
	if len(ck.Values) != 2 || ck.Values[0] != ck.Values[1] {
		t.Fatalf("torn checkpoint: %+v mixes two savers' payloads", ck)
	}
	if ck.Values[0] < 0 || ck.Values[0] >= savers {
		t.Fatalf("checkpoint value %v matches no saver", ck.Values[0])
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("readdir: %v", err)
	}
	for _, e := range entries {
		if e.Name() != "ck.json" {
			t.Fatalf("temp debris survived: %s", e.Name())
		}
	}
}
