package dse

import (
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"sort"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/robust"
)

// CtxEvaluator is the resilient evaluator contract: context-aware and
// fallible. dse.SimEvaluator and dse.ModelEvaluator implement it; plain
// Evaluators adapt through WithContext.
type CtxEvaluator = robust.Evaluator

// ctxAdapter lifts a plain Evaluator to CtxEvaluator, forwarding the
// inner evaluator's fingerprint (when it has one) so adapted evaluators
// still participate in engine memoization.
type ctxAdapter struct {
	inner Evaluator
}

func (a ctxAdapter) EvaluateCtx(ctx context.Context, point []float64) (float64, error) {
	if err := ctx.Err(); err != nil {
		return math.NaN(), err
	}
	//lint:allow enginepath the adapter IS the engine's entry bridge for plain evaluators
	return a.inner.Evaluate(point), nil
}

// Fingerprint implements engine.Fingerprinter when the wrapped evaluator
// does; otherwise it returns "" (and the engine treats the adapter as
// anonymous — metered but uncached).
func (a ctxAdapter) Fingerprint() string {
	if f, ok := a.inner.(engine.Fingerprinter); ok {
		return "dse.ctx{" + f.Fingerprint() + "}"
	}
	return ""
}

// WithContext adapts a plain Evaluator to the CtxEvaluator interface:
// cancellation is honoured between evaluations and the score is returned
// with a nil error. If the inner evaluator carries an engine fingerprint,
// the adapter forwards it so memoization still applies.
func WithContext(e Evaluator) CtxEvaluator {
	if f, ok := e.(engine.Fingerprinter); ok && f.Fingerprint() != "" {
		return ctxAdapter{inner: e}
	}
	return robust.EvaluatorFunc(func(ctx context.Context, point []float64) (float64, error) {
		if err := ctx.Err(); err != nil {
			return math.NaN(), err
		}
		//lint:allow enginepath the adapter IS the engine's entry bridge for plain evaluators
		return e.Evaluate(point), nil
	})
}

// SweepOptions tunes the resilient sweep.
type SweepOptions struct {
	// Engine routes every evaluation through a shared memoizing engine.
	// When set, the engine's worker bound and retry policy win over the
	// Workers and Retry fields below, and results already memoized by
	// earlier work on the same engine are served from its cache.
	Engine *engine.Engine
	// Workers bounds parallelism (≤0: GOMAXPROCS). Ignored when Engine is
	// set.
	Workers int
	// Retry governs re-attempts of failing or panicking evaluations; the
	// zero value selects robust.DefaultRetry (3 attempts, exponential
	// backoff with jitter). Ignored when Engine is set.
	Retry robust.RetryPolicy
	// Timeout bounds the whole sweep's wall time (0: none). It stacks
	// with whatever deadline the caller's context already carries.
	Timeout time.Duration
	// CheckpointPath enables periodic JSON checkpointing of completed
	// values to this file (written atomically via rename). Empty disables.
	CheckpointPath string
	// CheckpointEvery is the number of completed evaluations between
	// checkpoint writes (default 256). A final checkpoint is always
	// written when the sweep stops, including on cancellation.
	CheckpointEvery int
	// Resume loads CheckpointPath (when the file exists) before sweeping
	// and skips every index it already carries. The checkpoint must match
	// the space's signature.
	Resume bool
	// DisableBatch keeps the sweep on the engine's scalar per-point path
	// even for batch-capable evaluators (differential testing and
	// benchmarking). Ignored when Engine is set — a shared engine carries
	// its own batch setting.
	DisableBatch bool
}

// IndexFailure records one design point whose evaluation kept failing
// after exhausting the retry budget.
type IndexFailure struct {
	Index    int    `json:"index"`
	Attempts int    `json:"attempts"`
	Err      string `json:"err"`
}

// SweepReport summarizes a resilient sweep: which indices completed,
// failed or were left pending (cancellation), how many retries were
// spent, and the wall time. Partial results always accompany the report —
// a crash or cancellation at 90% completion loses nothing.
type SweepReport struct {
	// Total is the number of indices the sweep was asked to evaluate.
	Total int `json:"total"`
	// Completed lists the successfully evaluated indices, sorted. It
	// includes indices restored from a resumed checkpoint.
	Completed []int `json:"completed"`
	// Failed lists the indices whose evaluations exhausted the retry
	// budget, with their final error.
	Failed []IndexFailure `json:"failed,omitempty"`
	// Pending lists the indices never evaluated because the sweep was
	// cancelled or timed out.
	Pending []int `json:"pending,omitempty"`
	// Retries is the total number of re-attempts across all indices.
	Retries int `json:"retries"`
	// Resumed is how many completed indices were restored from the
	// checkpoint instead of evaluated.
	Resumed int `json:"resumed"`
	// CacheHits is how many completed indices were served from the
	// engine's memoization cache (or a concurrent in-flight computation)
	// instead of raw evaluation.
	CacheHits int `json:"cache_hits,omitempty"`
	// Canceled reports whether the sweep stopped on context cancellation
	// or deadline.
	Canceled bool `json:"canceled"`
	// WallTime is the sweep's wall-clock duration.
	WallTime time.Duration `json:"wall_time_ns"`
}

// SweepCtx evaluates the listed flat indices (all of them when indices is
// nil) through the evaluation engine: a worker pool hardened against
// cancellation, panicking evaluators and transient failures, with
// memoization and in-flight deduplication when opts.Engine is shared
// across sweeps. It returns a dense slice indexed by flat index (NaN for
// unevaluated entries), the structured report, and the context's error
// when the sweep was cut short. The values slice is valid in every case.
func SweepCtx(ctx context.Context, e CtxEvaluator, s Space, indices []int, opts SweepOptions) ([]float64, SweepReport, error) {
	start := time.Now() //lint:allow detguard wall time feeds SweepReport.Wall (reporting metadata), never the swept values
	size := s.Size()
	values := make([]float64, size)
	for i := range values {
		values[i] = math.NaN()
	}
	if indices == nil {
		indices = make([]int, size)
		for i := range indices {
			indices[i] = i
		}
	}
	rep := SweepReport{Total: len(indices)}

	// Observability rides in on the context: the sweep span wraps the
	// whole call, and the ephemeral engine (below) inherits the same
	// tracer/registry so engine.eval spans nest under dse.batch.
	tr := obs.TracerFrom(ctx)
	met := obs.MetricsFrom(ctx)
	met.Counter("dse_sweeps_total").Add(1)
	completedC := met.Counter("dse_points_completed_total")
	failedC := met.Counter("dse_points_failed_total")
	cacheHitC := met.Counter("dse_points_cache_hits_total")
	checkpointC := met.Counter("dse_checkpoints_total")
	ctx, sweepSp := tr.Start(ctx, "dse.sweep", obs.I("total", int64(len(indices))))
	defer func() {
		sweepSp.Annotate(
			obs.I("completed", int64(len(rep.Completed))),
			obs.I("failed", int64(len(rep.Failed))),
			obs.I("resumed", int64(rep.Resumed)),
			obs.I("cache_hits", int64(rep.CacheHits)))
		sweepSp.Finish()
	}()

	if opts.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.Timeout)
		defer cancel()
	}

	// Resume: restore completed indices from the checkpoint.
	done := make(map[int]bool)
	if opts.Resume && opts.CheckpointPath != "" {
		_, resumeSp := tr.Start(ctx, "dse.resume", obs.S("path", opts.CheckpointPath))
		ck, err := LoadCheckpoint(opts.CheckpointPath)
		switch {
		case os.IsNotExist(err):
			// Nothing to resume; a fresh sweep.
			resumeSp.Finish()
		case err != nil:
			resumeSp.Annotate(obs.S("error", err.Error()))
			resumeSp.Finish()
			rep.WallTime = time.Since(start) //lint:allow detguard WallTime is SweepReport metadata, never a swept value
			return values, rep, fmt.Errorf("dse: resume: %w", err)
		default:
			if ck.Signature != s.Signature() {
				resumeSp.Annotate(obs.S("error", "signature mismatch"))
				resumeSp.Finish()
				rep.WallTime = time.Since(start) //lint:allow detguard WallTime is SweepReport metadata, never a swept value
				return values, rep, fmt.Errorf("dse: resume: checkpoint %q belongs to a different space (signature %s, want %s)",
					opts.CheckpointPath, ck.Signature, s.Signature())
			}
			for i, idx := range ck.Indices {
				if idx >= 0 && idx < size {
					values[idx] = ck.Values[i]
					done[idx] = true
				}
			}
			resumeSp.Annotate(obs.I("restored", int64(len(done))))
			resumeSp.Finish()
		}
	}

	pending := make([]int, 0, len(indices))
	for _, idx := range indices {
		if done[idx] {
			rep.Completed = append(rep.Completed, idx)
			rep.Resumed++
		} else {
			pending = append(pending, idx)
		}
	}

	eng := opts.Engine
	if eng == nil {
		// Ephemeral engine for this sweep only: same pool/guard/retry
		// machinery, but no memoization (indices within one sweep are
		// unique, so a private cache could never hit).
		eng = engine.New(engine.Options{
			Workers:      opts.Workers,
			CacheSize:    -1,
			Retry:        opts.Retry,
			Seed:         0x5eed ^ uint64(len(indices)),
			Tracer:       tr,
			Metrics:      met,
			DisableBatch: opts.DisableBatch,
		})
	}

	// The plane is one flat slab sliced per point: a single allocation
	// feeds the engine's batched path with cache-adjacent points.
	dims := s.Dims()
	slab := make([]float64, 0, len(pending)*dims)
	points := make([][]float64, len(pending))
	for i, idx := range pending {
		lo := len(slab)
		slab = s.AppendPoint(slab, idx)
		points[i] = slab[lo:len(slab):len(slab)]
	}

	every := opts.CheckpointEvery
	if every <= 0 {
		every = 256
	}
	saw := make(map[int]bool, len(pending))
	sinceCk := 0
	var ckErr error
	save := func() {
		if opts.CheckpointPath == "" || ckErr != nil {
			return
		}
		_, ckSp := tr.Start(ctx, "dse.checkpoint", obs.I("completed", int64(len(rep.Completed))))
		ckErr = SaveCheckpoint(opts.CheckpointPath, s, values, rep.Completed)
		if ckErr == nil {
			checkpointC.Add(1)
		} else {
			ckSp.Annotate(obs.S("error", ckErr.Error()))
		}
		ckSp.Finish()
	}
	// yield runs on EvaluateStream's single collector goroutine, so the
	// report and values need no locking.
	batchCtx, batchSp := tr.Start(ctx, "dse.batch", obs.I("points", int64(len(pending))))
	_ = eng.EvaluateStream(batchCtx, e, points, func(i int, o engine.Outcome) {
		idx := pending[i]
		if o.Attempts > 1 {
			rep.Retries += o.Attempts - 1
		}
		if o.Err != nil {
			if errors.Is(o.Err, context.Canceled) || errors.Is(o.Err, context.DeadlineExceeded) {
				// Interrupted, not failed: the index counts as pending so a
				// resumed sweep picks it up again.
				return
			}
			saw[idx] = true
			failedC.Add(1)
			rep.Failed = append(rep.Failed, IndexFailure{Index: idx, Attempts: o.Attempts, Err: o.Err.Error()})
			return
		}
		saw[idx] = true
		if o.CacheHit || o.Shared {
			rep.CacheHits++
			cacheHitC.Add(1)
		}
		completedC.Add(1)
		values[idx] = o.Value
		rep.Completed = append(rep.Completed, idx)
		sinceCk++
		if sinceCk >= every {
			sinceCk = 0
			save()
		}
	})
	batchSp.Finish()
	for _, idx := range pending {
		if !saw[idx] {
			rep.Pending = append(rep.Pending, idx)
		}
	}
	sort.Ints(rep.Completed)
	sort.Slice(rep.Failed, func(i, j int) bool { return rep.Failed[i].Index < rep.Failed[j].Index })
	save()
	if ckErr != nil {
		rep.WallTime = time.Since(start) //lint:allow detguard WallTime is SweepReport metadata, never a swept value
		return values, rep, fmt.Errorf("dse: checkpoint: %w", ckErr)
	}
	rep.Canceled = ctx.Err() != nil
	rep.WallTime = time.Since(start) //lint:allow detguard WallTime is SweepReport metadata, never a swept value
	return values, rep, ctx.Err()
}
