package dse

import (
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/robust"
)

// CtxEvaluator is the resilient evaluator contract: context-aware and
// fallible. dse.SimEvaluator and dse.ModelEvaluator implement it; plain
// Evaluators adapt through WithContext.
type CtxEvaluator = robust.Evaluator

// WithContext adapts a plain Evaluator to the CtxEvaluator interface:
// cancellation is honoured between evaluations and the score is returned
// with a nil error.
func WithContext(e Evaluator) CtxEvaluator {
	return robust.EvaluatorFunc(func(ctx context.Context, point []float64) (float64, error) {
		if err := ctx.Err(); err != nil {
			return math.NaN(), err
		}
		return e.Evaluate(point), nil
	})
}

// SweepOptions tunes the resilient sweep.
type SweepOptions struct {
	// Workers bounds parallelism (≤0: GOMAXPROCS).
	Workers int
	// Retry governs re-attempts of failing or panicking evaluations; the
	// zero value selects robust.DefaultRetry (3 attempts, exponential
	// backoff with jitter).
	Retry robust.RetryPolicy
	// Timeout bounds the whole sweep's wall time (0: none). It stacks
	// with whatever deadline the caller's context already carries.
	Timeout time.Duration
	// CheckpointPath enables periodic JSON checkpointing of completed
	// values to this file (written atomically via rename). Empty disables.
	CheckpointPath string
	// CheckpointEvery is the number of completed evaluations between
	// checkpoint writes (default 256). A final checkpoint is always
	// written when the sweep stops, including on cancellation.
	CheckpointEvery int
	// Resume loads CheckpointPath (when the file exists) before sweeping
	// and skips every index it already carries. The checkpoint must match
	// the space's signature.
	Resume bool
}

// IndexFailure records one design point whose evaluation kept failing
// after exhausting the retry budget.
type IndexFailure struct {
	Index    int    `json:"index"`
	Attempts int    `json:"attempts"`
	Err      string `json:"err"`
}

// SweepReport summarizes a resilient sweep: which indices completed,
// failed or were left pending (cancellation), how many retries were
// spent, and the wall time. Partial results always accompany the report —
// a crash or cancellation at 90% completion loses nothing.
type SweepReport struct {
	// Total is the number of indices the sweep was asked to evaluate.
	Total int `json:"total"`
	// Completed lists the successfully evaluated indices, sorted. It
	// includes indices restored from a resumed checkpoint.
	Completed []int `json:"completed"`
	// Failed lists the indices whose evaluations exhausted the retry
	// budget, with their final error.
	Failed []IndexFailure `json:"failed,omitempty"`
	// Pending lists the indices never evaluated because the sweep was
	// cancelled or timed out.
	Pending []int `json:"pending,omitempty"`
	// Retries is the total number of re-attempts across all indices.
	Retries int `json:"retries"`
	// Resumed is how many completed indices were restored from the
	// checkpoint instead of evaluated.
	Resumed int `json:"resumed"`
	// Canceled reports whether the sweep stopped on context cancellation
	// or deadline.
	Canceled bool `json:"canceled"`
	// WallTime is the sweep's wall-clock duration.
	WallTime time.Duration `json:"wall_time_ns"`
}

// sweepResult is one worker's outcome for one index.
type sweepResult struct {
	idx      int
	value    float64
	attempts int
	err      error
}

// SweepCtx evaluates the listed flat indices (all of them when indices is
// nil) with a worker pool hardened against cancellation, panicking
// evaluators and transient failures. It returns a dense slice indexed by
// flat index (NaN for unevaluated entries), the structured report, and
// the context's error when the sweep was cut short. The values slice is
// valid in every case.
func SweepCtx(ctx context.Context, e CtxEvaluator, s Space, indices []int, opts SweepOptions) ([]float64, SweepReport, error) {
	start := time.Now()
	size := s.Size()
	values := make([]float64, size)
	for i := range values {
		values[i] = math.NaN()
	}
	if indices == nil {
		indices = make([]int, size)
		for i := range indices {
			indices[i] = i
		}
	}
	rep := SweepReport{Total: len(indices)}

	if opts.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.Timeout)
		defer cancel()
	}

	// Resume: restore completed indices from the checkpoint.
	done := make(map[int]bool)
	if opts.Resume && opts.CheckpointPath != "" {
		ck, err := LoadCheckpoint(opts.CheckpointPath)
		switch {
		case os.IsNotExist(err):
			// Nothing to resume; a fresh sweep.
		case err != nil:
			rep.WallTime = time.Since(start)
			return values, rep, fmt.Errorf("dse: resume: %w", err)
		default:
			if ck.Signature != s.Signature() {
				rep.WallTime = time.Since(start)
				return values, rep, fmt.Errorf("dse: resume: checkpoint %q belongs to a different space (signature %s, want %s)",
					opts.CheckpointPath, ck.Signature, s.Signature())
			}
			for i, idx := range ck.Indices {
				if idx >= 0 && idx < size {
					values[idx] = ck.Values[i]
					done[idx] = true
				}
			}
		}
	}

	pending := make([]int, 0, len(indices))
	for _, idx := range indices {
		if done[idx] {
			rep.Completed = append(rep.Completed, idx)
			rep.Resumed++
		} else {
			pending = append(pending, idx)
		}
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pending) {
		workers = len(pending)
	}
	if workers < 1 {
		workers = 1
	}

	guarded := robust.Guard(e)
	rng := robust.NewRNG(0x5eed ^ uint64(len(indices)))
	work := make(chan int)
	results := make(chan sweepResult, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range work {
				if ctx.Err() != nil {
					return
				}
				point := s.Point(idx)
				var v float64
				attempts, err := opts.Retry.Do(ctx, rng, func(ctx context.Context) error {
					var e2 error
					v, e2 = guarded.EvaluateCtx(ctx, point)
					return e2
				})
				results <- sweepResult{idx: idx, value: v, attempts: attempts, err: err}
			}
		}()
	}
	go func() {
		defer close(work)
		for _, idx := range pending {
			select {
			case work <- idx:
			case <-ctx.Done():
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(results)
	}()

	every := opts.CheckpointEvery
	if every <= 0 {
		every = 256
	}
	saw := make(map[int]bool, len(pending))
	sinceCk := 0
	var ckErr error
	save := func() {
		if opts.CheckpointPath == "" || ckErr != nil {
			return
		}
		ckErr = SaveCheckpoint(opts.CheckpointPath, s, values, rep.Completed)
	}
	for r := range results {
		if r.attempts > 1 {
			rep.Retries += r.attempts - 1
		}
		if r.err != nil {
			if errors.Is(r.err, context.Canceled) || errors.Is(r.err, context.DeadlineExceeded) {
				// Interrupted, not failed: the index counts as pending so a
				// resumed sweep picks it up again.
				continue
			}
			saw[r.idx] = true
			rep.Failed = append(rep.Failed, IndexFailure{Index: r.idx, Attempts: r.attempts, Err: r.err.Error()})
			continue
		}
		saw[r.idx] = true
		values[r.idx] = r.value
		rep.Completed = append(rep.Completed, r.idx)
		sinceCk++
		if sinceCk >= every {
			sinceCk = 0
			save()
		}
	}
	for _, idx := range pending {
		if !saw[idx] {
			rep.Pending = append(rep.Pending, idx)
		}
	}
	sort.Ints(rep.Completed)
	sort.Slice(rep.Failed, func(i, j int) bool { return rep.Failed[i].Index < rep.Failed[j].Index })
	save()
	if ckErr != nil {
		rep.WallTime = time.Since(start)
		return values, rep, fmt.Errorf("dse: checkpoint: %w", ckErr)
	}
	rep.Canceled = ctx.Err() != nil
	rep.WallTime = time.Since(start)
	return values, rep, ctx.Err()
}
