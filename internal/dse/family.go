package dse

import (
	"context"
	"fmt"
	"math"
	"sync"

	"repro/internal/model"
)

// SpaceFor converts a model family's declared design space into a sweep
// Space, subsampled to at most `per` values per dimension (per ≤ 0
// keeps the family's full default grids). For the c2bound family the
// result is identical to ReducedSpace/PaperSpace — the subsample rule
// is shared — so family-generic callers and the paper-space helpers
// sweep the same designs.
func SpaceFor(m model.Model, per int) (Space, error) {
	ms := m.Space()
	grids, err := ms.Grids(per)
	if err != nil {
		return Space{}, fmt.Errorf("dse: %s: %w", m.Fingerprint(), err)
	}
	params := make([]Param, len(grids))
	for i, g := range grids {
		params[i] = Param{Name: ms.Params[i].Name, Values: g}
	}
	return NewSpace(params...)
}

// FamilyEvaluator scores configurations with any registered model
// family. It is the family-generic sibling of ModelEvaluator: the
// scalar path uses the family's direct (uncompiled) evaluation, whole
// planes ride the engine's batched path through the compiled kernel,
// and the family contract makes the two bit-identical. Use by pointer —
// the lazy compile state must not be copied.
type FamilyEvaluator struct {
	M model.Model

	fpOnce sync.Once
	fp     string

	compileOnce sync.Once
	kernel      model.Kernel
	compileErr  error
}

// NewFamilyEvaluator wraps a model for sweeping.
func NewFamilyEvaluator(m model.Model) *FamilyEvaluator {
	return &FamilyEvaluator{M: m}
}

// Fingerprint implements engine.Fingerprinter. It is the model's own
// family-qualified fingerprint ("model/<family>:…"), so the engine's
// memo and singleflight keys can never collide across families. The
// string is memoized — the engine probes it on every request, and the
// warm-hit path must stay allocation-free.
func (e *FamilyEvaluator) Fingerprint() string {
	e.fpOnce.Do(func() { e.fp = e.M.Fingerprint() })
	return e.fp
}

// compile resolves the kernel once; every path shares the outcome.
func (e *FamilyEvaluator) compile() (model.Kernel, error) {
	e.compileOnce.Do(func() {
		e.kernel, e.compileErr = e.M.Compile()
	})
	return e.kernel, e.compileErr
}

// Evaluate implements Evaluator: the family objective at the point,
// +Inf for infeasible points, NaN when the family cannot evaluate at
// all (compile failure without a direct path). The direct path is
// preferred so the scalar result never depends on compile state.
func (e *FamilyEvaluator) Evaluate(point []float64) float64 {
	if d, ok := e.M.(model.Direct); ok {
		t, _, feasible := d.DirectTimeWorkAt(point)
		if !feasible {
			return math.Inf(1)
		}
		return t
	}
	k, err := e.compile()
	if err != nil {
		return math.NaN()
	}
	//lint:allow enginepath FamilyEvaluator is the engine adapter itself; consumers reach this kernel call through Engine.EvaluateStream
	return k.TimeAt(point)
}

// EvaluateCtx implements CtxEvaluator.
func (e *FamilyEvaluator) EvaluateCtx(ctx context.Context, point []float64) (float64, error) {
	if err := ctx.Err(); err != nil {
		return math.NaN(), err
	}
	return e.Evaluate(point), nil
}

// EvaluateBatch implements engine.BatchEvaluator: the whole plane runs
// through the compiled kernel (constants folded once), bit-identical to
// per-point Evaluate by the family contract. A model the compiler
// rejects falls back to the scalar path so the two paths can never
// disagree.
func (e *FamilyEvaluator) EvaluateBatch(ctx context.Context, points [][]float64, out []float64) error {
	k, err := e.compile()
	if err != nil {
		for i, p := range points {
			if i&255 == 0 {
				if cerr := ctx.Err(); cerr != nil {
					return cerr
				}
			}
			out[i] = e.Evaluate(p)
		}
		return nil
	}
	for i, p := range points {
		if i&255 == 0 {
			if cerr := ctx.Err(); cerr != nil {
				return cerr
			}
		}
		//lint:allow enginepath FamilyEvaluator is the engine adapter itself; consumers reach this kernel call through Engine.EvaluateStream
		out[i] = k.TimeAt(p)
	}
	return nil
}
