// Package dse defines the design space of the paper's §IV experiment —
// six microarchitecture parameters (core area A0, L1 area A1, L2 slice
// area A2, core count N, issue width, ROB size) with ten candidate values
// each, a 10⁶-point space — together with enumeration, nearest-point
// snapping, slice extraction and a parallel brute-force sweep that serves
// as the ground truth APS and the ANN baseline are measured against.
package dse

import (
	"context"
	"fmt"
	"math"

	"repro/internal/robust"
)

// Param is one design-space dimension.
type Param struct {
	Name   string
	Values []float64
}

// Space is the Cartesian product of its parameters.
type Space struct {
	Params []Param
}

// NewSpace validates and builds a space.
func NewSpace(params ...Param) (Space, error) {
	if len(params) == 0 {
		return Space{}, fmt.Errorf("dse: empty space")
	}
	for _, p := range params {
		if p.Name == "" || len(p.Values) == 0 {
			return Space{}, fmt.Errorf("dse: parameter %q has no values", p.Name)
		}
	}
	return Space{Params: params}, nil
}

// Dims returns the number of dimensions.
func (s Space) Dims() int { return len(s.Params) }

// Size returns the total number of configurations.
func (s Space) Size() int {
	n := 1
	for _, p := range s.Params {
		n *= len(p.Values)
	}
	return n
}

// DimIndex returns the dimension position of a named parameter, or an
// error if absent.
func (s Space) DimIndex(name string) (int, error) {
	for i, p := range s.Params {
		if p.Name == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("dse: no parameter %q", name)
}

// Coords decodes a flat index into per-dimension value indices
// (row-major: the last dimension varies fastest).
func (s Space) Coords(idx int) []int {
	coords := make([]int, len(s.Params))
	for d := len(s.Params) - 1; d >= 0; d-- {
		n := len(s.Params[d].Values)
		coords[d] = idx % n
		idx /= n
	}
	return coords
}

// Index encodes per-dimension value indices into a flat index.
func (s Space) Index(coords []int) int {
	idx := 0
	for d, c := range coords {
		idx = idx*len(s.Params[d].Values) + c
	}
	return idx
}

// Point returns the parameter values at a flat index.
func (s Space) Point(idx int) []float64 {
	coords := s.Coords(idx)
	point := make([]float64, len(coords))
	for d, c := range coords {
		point[d] = s.Params[d].Values[c]
	}
	return point
}

// AppendPoint appends the parameter values at a flat index to dst and
// returns the extended slice. It is Point without the per-point
// allocations: sweep planes build one flat slab and slice it, so a
// million-point plane costs one allocation instead of two million.
func (s Space) AppendPoint(dst []float64, idx int) []float64 {
	base := len(dst)
	for range s.Params {
		dst = append(dst, 0)
	}
	for d := len(s.Params) - 1; d >= 0; d-- {
		vals := s.Params[d].Values
		dst[base+d] = vals[idx%len(vals)]
		idx /= len(vals)
	}
	return dst
}

// PointAt returns the values for explicit coordinates.
func (s Space) PointAt(coords []int) []float64 {
	point := make([]float64, len(coords))
	for d, c := range coords {
		point[d] = s.Params[d].Values[c]
	}
	return point
}

// Nearest returns the value index in dimension dim closest to v.
func (s Space) Nearest(dim int, v float64) int {
	best := 0
	bestD := math.Inf(1)
	for i, val := range s.Params[dim].Values {
		if d := math.Abs(val - v); d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

// SliceIndices returns the flat indices of every configuration whose
// coordinates match `fixed` (a map from dimension to value index); the
// remaining dimensions enumerate freely.
func (s Space) SliceIndices(fixed map[int]int) []int {
	free := []int{}
	for d := range s.Params {
		if _, ok := fixed[d]; !ok {
			free = append(free, d)
		}
	}
	count := 1
	for _, d := range free {
		count *= len(s.Params[d].Values)
	}
	coords := make([]int, s.Dims())
	for d, c := range fixed {
		coords[d] = c
	}
	out := make([]int, 0, count)
	var rec func(k int)
	rec = func(k int) {
		if k == len(free) {
			out = append(out, s.Index(coords))
			return
		}
		d := free[k]
		for c := 0; c < len(s.Params[d].Values); c++ {
			coords[d] = c
			rec(k + 1)
		}
	}
	rec(0)
	return out
}

// Neighborhood returns the flat indices obtained by varying the listed
// dimensions within ±radius grid steps of center (clipped at the edges)
// while holding all other dimensions at the center coordinates. The
// center itself is included once.
func (s Space) Neighborhood(center []int, radius int, dims []int) []int {
	if radius < 0 {
		radius = 0
	}
	coords := append([]int(nil), center...)
	seen := map[int]bool{}
	out := []int{}
	var rec func(k int)
	rec = func(k int) {
		if k == len(dims) {
			idx := s.Index(coords)
			if !seen[idx] {
				seen[idx] = true
				out = append(out, idx)
			}
			return
		}
		d := dims[k]
		lo := center[d] - radius
		hi := center[d] + radius
		if lo < 0 {
			lo = 0
		}
		if hi >= len(s.Params[d].Values) {
			hi = len(s.Params[d].Values) - 1
		}
		for c := lo; c <= hi; c++ {
			coords[d] = c
			rec(k + 1)
		}
		coords[d] = center[d]
	}
	rec(0)
	return out
}

// Evaluator scores one configuration; smaller is better (execution time).
// Implementations must be safe for concurrent use by multiple goroutines.
type Evaluator interface {
	Evaluate(point []float64) float64
}

// EvaluatorFunc adapts a function to the Evaluator interface.
type EvaluatorFunc func(point []float64) float64

// Evaluate implements Evaluator.
func (f EvaluatorFunc) Evaluate(point []float64) float64 { return f(point) }

// Sweep evaluates every configuration with a worker pool and returns the
// value for each flat index. workers ≤ 0 selects GOMAXPROCS. Cancellation
// of ctx stops the sweep promptly, leaving unevaluated entries NaN; use
// SweepCtx for the full report (failures, retries, pending indices).
func Sweep(ctx context.Context, e Evaluator, s Space, workers int) []float64 {
	return SweepIndices(ctx, e, s, nil, workers)
}

// SweepIndices evaluates the listed flat indices (all of them when
// indices is nil) in parallel, returning a dense slice indexed by flat
// index with NaN for unevaluated entries (or every entry when indices is
// nil, in which case all are evaluated). Evaluator panics are isolated to
// their index (the entry stays NaN) instead of crashing the sweep.
func SweepIndices(ctx context.Context, e Evaluator, s Space, indices []int, workers int) []float64 {
	values, _, _ := SweepCtx(ctx, WithContext(e), s, indices, SweepOptions{
		Workers: workers,
		Retry:   robust.RetryPolicy{MaxAttempts: 1}, // plain evaluators are deterministic
	})
	return values
}

// Best returns the index and value of the smallest finite entry; idx is −1
// when none is finite.
func Best(values []float64) (int, float64) {
	best := -1
	bestV := math.Inf(1)
	for i, v := range values {
		if !math.IsNaN(v) && v < bestV {
			best, bestV = i, v
		}
	}
	return best, bestV
}
