package dse

import (
	"context"
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/chip"
	"repro/internal/core"
	"repro/internal/robust"
)

func modelEvalSpace(t *testing.T, per int) (*ModelEvaluator, Space) {
	t.Helper()
	cfg := chip.DefaultConfig()
	s, err := ReducedSpace(cfg, per)
	if err != nil {
		t.Fatalf("ReducedSpace: %v", err)
	}
	m := core.Model{Chip: cfg, App: core.FluidanimateApp()}
	return &ModelEvaluator{Model: m}, s
}

func TestSweepCtxMatchesPlainSweep(t *testing.T) {
	eval, s := modelEvalSpace(t, 2)
	plain := Sweep(context.Background(), eval, s, 4)
	vals, rep, err := SweepCtx(context.Background(), eval, s, nil, SweepOptions{Workers: 4})
	if err != nil {
		t.Fatalf("SweepCtx: %v", err)
	}
	if len(rep.Completed) != s.Size() || len(rep.Failed) != 0 || len(rep.Pending) != 0 || rep.Canceled {
		t.Fatalf("report = %+v", rep)
	}
	for i := range plain {
		if math.Float64bits(plain[i]) != math.Float64bits(vals[i]) {
			t.Fatalf("value %d differs: %v vs %v", i, plain[i], vals[i])
		}
	}
}

func TestSweepCtxCancelReturnsPromptlyWithPartialResults(t *testing.T) {
	s, err := NewSpace(Param{Name: "x", Values: make([]float64, 64)})
	if err != nil {
		t.Fatal(err)
	}
	for i := range s.Params[0].Values {
		s.Params[0].Values[i] = float64(i)
	}
	ctx, cancel := context.WithCancel(context.Background())
	evaluated := make(chan int, 64)
	eval := robust.EvaluatorFunc(func(c context.Context, p []float64) (float64, error) {
		if p[0] >= 8 {
			// Block until cancelled: these indices must end up Pending.
			<-c.Done()
			return math.NaN(), c.Err()
		}
		evaluated <- int(p[0])
		return p[0] * 10, nil
	})
	go func() {
		// Cancel once a few fast points finished.
		for i := 0; i < 4; i++ {
			<-evaluated
		}
		cancel()
	}()
	start := time.Now()
	vals, rep, err := SweepCtx(ctx, eval, s, nil, SweepOptions{Workers: 4})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Fatalf("sweep took %v after cancel", took)
	}
	if !rep.Canceled {
		t.Fatal("report does not mark cancellation")
	}
	if len(rep.Pending) == 0 {
		t.Fatal("no pending indices despite cancellation")
	}
	if len(rep.Completed) == 0 {
		t.Fatal("no partial results before cancellation")
	}
	if len(rep.Completed)+len(rep.Pending)+len(rep.Failed) != rep.Total {
		t.Fatalf("index partition broken: %d+%d+%d != %d",
			len(rep.Completed), len(rep.Pending), len(rep.Failed), rep.Total)
	}
	for _, i := range rep.Completed {
		if vals[i] != float64(i)*10 {
			t.Fatalf("completed index %d has value %v", i, vals[i])
		}
	}
	for _, i := range rep.Pending {
		if !math.IsNaN(vals[i]) {
			t.Fatalf("pending index %d has value %v, want NaN", i, vals[i])
		}
	}
}

func TestSweepCtxFaultInjectionMatchesFaultFreeExactly(t *testing.T) {
	eval, s := modelEvalSpace(t, 2)
	clean, _, err := SweepCtx(context.Background(), eval, s, nil, SweepOptions{Workers: 4})
	if err != nil {
		t.Fatalf("clean sweep: %v", err)
	}

	faulty := robust.NewFaulty(eval, 0xfa117)
	faulty.PFail = 0.15
	faulty.PPanic = 0.05 // 20% transient faults total
	vals, rep, err := SweepCtx(context.Background(), faulty, s, nil, SweepOptions{
		Workers: 4,
		Retry:   robust.RetryPolicy{MaxAttempts: 12, BaseDelay: time.Microsecond, MaxDelay: 50 * time.Microsecond},
	})
	if err != nil {
		t.Fatalf("faulty sweep: %v", err)
	}
	if len(rep.Failed) != 0 {
		t.Fatalf("faulty sweep left permanent failures: %+v", rep.Failed)
	}
	if rep.Retries == 0 {
		t.Fatal("20% fault injection produced zero retries")
	}
	calls, failures, panics, _ := faulty.Counts()
	if failures == 0 && panics == 0 {
		t.Fatalf("no faults injected over %d calls", calls)
	}
	for i := range clean {
		if math.Float64bits(clean[i]) != math.Float64bits(vals[i]) {
			t.Fatalf("index %d: faulty %v != clean %v", i, vals[i], clean[i])
		}
	}
}

func TestSweepCtxCheckpointResumeByteIdentical(t *testing.T) {
	eval, s := modelEvalSpace(t, 2)
	path := filepath.Join(t.TempDir(), "sweep.ckpt")

	// Reference: one uninterrupted sweep.
	want, _, err := SweepCtx(context.Background(), eval, s, nil, SweepOptions{Workers: 2})
	if err != nil {
		t.Fatalf("reference sweep: %v", err)
	}

	// Pass 1: evaluate only half the indices, checkpointing every write,
	// then "kill" (here: simply stop after the partial index list).
	half := make([]int, 0, s.Size()/2)
	for i := 0; i < s.Size(); i += 2 {
		half = append(half, i)
	}
	_, rep1, err := SweepCtx(context.Background(), eval, s, half, SweepOptions{
		Workers: 2, CheckpointPath: path, CheckpointEvery: 1,
	})
	if err != nil {
		t.Fatalf("partial sweep: %v", err)
	}
	if len(rep1.Completed) != len(half) {
		t.Fatalf("partial sweep completed %d of %d", len(rep1.Completed), len(half))
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("checkpoint not written: %v", err)
	}

	// Pass 2: resume over the full space; the checkpointed half must be
	// restored, the rest evaluated, and the result byte-identical.
	got, rep2, err := SweepCtx(context.Background(), eval, s, nil, SweepOptions{
		Workers: 2, CheckpointPath: path, Resume: true,
	})
	if err != nil {
		t.Fatalf("resumed sweep: %v", err)
	}
	if rep2.Resumed != len(half) {
		t.Fatalf("resumed %d indices, want %d", rep2.Resumed, len(half))
	}
	if len(rep2.Completed) != s.Size() {
		t.Fatalf("resumed sweep completed %d of %d", len(rep2.Completed), s.Size())
	}
	for i := range want {
		if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
			t.Fatalf("index %d: resumed %v != reference %v (bits %x vs %x)",
				i, got[i], want[i], math.Float64bits(got[i]), math.Float64bits(want[i]))
		}
	}
}

func TestSweepCtxCancelThenResumeCompletes(t *testing.T) {
	// The checkpoint written on cancellation must let a resumed run finish
	// the job without re-evaluating the completed part.
	s, err := NewSpace(Param{Name: "x", Values: []float64{0, 1, 2, 3, 4, 5, 6, 7}})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	ctx, cancel := context.WithCancel(context.Background())
	fired := make(chan struct{})
	eval := robust.EvaluatorFunc(func(c context.Context, p []float64) (float64, error) {
		if p[0] >= 4 {
			select {
			case fired <- struct{}{}:
			default:
			}
			<-c.Done()
			return math.NaN(), c.Err()
		}
		return p[0] + 100, nil
	})
	go func() {
		<-fired
		cancel()
	}()
	_, rep, err := SweepCtx(ctx, eval, s, nil, SweepOptions{
		Workers: 1, CheckpointPath: path, CheckpointEvery: 1,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if len(rep.Completed) == 0 || len(rep.Pending) == 0 {
		t.Fatalf("unexpected split: %+v", rep)
	}

	vals, rep2, err := SweepCtx(context.Background(), robust.EvaluatorFunc(
		func(_ context.Context, p []float64) (float64, error) { return p[0] + 100, nil },
	), s, nil, SweepOptions{Workers: 1, CheckpointPath: path, Resume: true})
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if rep2.Resumed != len(rep.Completed) {
		t.Fatalf("resumed %d, want %d", rep2.Resumed, len(rep.Completed))
	}
	for i := 0; i < s.Size(); i++ {
		if vals[i] != float64(i)+100 {
			t.Fatalf("index %d = %v after resume", i, vals[i])
		}
	}
}

func TestSweepCtxPermanentFailureReported(t *testing.T) {
	s, err := NewSpace(Param{Name: "x", Values: []float64{0, 1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	broken := errors.New("hardware on fire")
	eval := robust.EvaluatorFunc(func(_ context.Context, p []float64) (float64, error) {
		if p[0] == 2 {
			return math.NaN(), broken
		}
		return p[0], nil
	})
	vals, rep, err := SweepCtx(context.Background(), eval, s, nil, SweepOptions{
		Workers: 2,
		Retry:   robust.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Microsecond},
	})
	if err != nil {
		t.Fatalf("SweepCtx: %v", err)
	}
	if len(rep.Failed) != 1 || rep.Failed[0].Index != 2 {
		t.Fatalf("Failed = %+v, want index 2", rep.Failed)
	}
	if rep.Failed[0].Attempts != 2 {
		t.Fatalf("failure after %d attempts, want 2", rep.Failed[0].Attempts)
	}
	if !math.IsNaN(vals[2]) {
		t.Fatalf("failed index has value %v", vals[2])
	}
	if len(rep.Completed) != 3 {
		t.Fatalf("completed = %v", rep.Completed)
	}
}

func TestSweepCtxTimeoutOption(t *testing.T) {
	s, err := NewSpace(Param{Name: "x", Values: []float64{0, 1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	eval := robust.EvaluatorFunc(func(c context.Context, p []float64) (float64, error) {
		select {
		case <-c.Done():
			return math.NaN(), c.Err()
		case <-time.After(time.Hour):
			return p[0], nil
		}
	})
	start := time.Now()
	_, rep, err := SweepCtx(context.Background(), eval, s, nil, SweepOptions{
		Workers: 2, Timeout: 50 * time.Millisecond,
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("timeout not honored promptly")
	}
	if !rep.Canceled || len(rep.Pending) != s.Size() {
		t.Fatalf("report = %+v", rep)
	}
}

func TestResumeRejectsForeignCheckpoint(t *testing.T) {
	evalA, sA := modelEvalSpace(t, 2)
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	if _, _, err := SweepCtx(context.Background(), evalA, sA, nil, SweepOptions{
		Workers: 2, CheckpointPath: path,
	}); err != nil {
		t.Fatalf("seed sweep: %v", err)
	}
	other, err := NewSpace(Param{Name: "x", Values: []float64{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = SweepCtx(context.Background(), WithContext(EvaluatorFunc(func(p []float64) float64 { return p[0] })),
		other, nil, SweepOptions{CheckpointPath: path, Resume: true})
	if err == nil {
		t.Fatal("checkpoint from a different space accepted")
	}
}

func TestCheckpointRoundTripsNonFiniteValues(t *testing.T) {
	s, err := NewSpace(Param{Name: "x", Values: []float64{0, 1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ckpt.json")
	vals := []float64{math.Inf(1), math.NaN(), 0.1 + 0.2}
	if err := SaveCheckpoint(path, s, vals, []int{0, 1, 2}); err != nil {
		t.Fatalf("SaveCheckpoint: %v", err)
	}
	ck, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatalf("LoadCheckpoint: %v", err)
	}
	for i, want := range vals {
		if math.Float64bits(ck.Values[i]) != math.Float64bits(want) {
			t.Fatalf("value %d: %v != %v", i, ck.Values[i], want)
		}
	}
}
