package dse

import (
	"context"
	"math"
	"testing"

	"repro/internal/chip"
	"repro/internal/core"
)

func paperSpace(t *testing.T) Space {
	t.Helper()
	s, err := PaperSpace(chip.DefaultConfig())
	if err != nil {
		t.Fatalf("PaperSpace: %v", err)
	}
	return s
}

func TestNewSpaceValidation(t *testing.T) {
	if _, err := NewSpace(); err == nil {
		t.Error("empty space accepted")
	}
	if _, err := NewSpace(Param{Name: "x"}); err == nil {
		t.Error("valueless parameter accepted")
	}
	if _, err := NewSpace(Param{Values: []float64{1}}); err == nil {
		t.Error("nameless parameter accepted")
	}
}

func TestPaperSpaceIsMillionPoints(t *testing.T) {
	s := paperSpace(t)
	if s.Size() != 1000000 {
		t.Fatalf("paper space size = %d, want 10^6", s.Size())
	}
	if s.Dims() != 6 {
		t.Fatalf("dims = %d", s.Dims())
	}
}

func TestPaperSpaceAllFeasible(t *testing.T) {
	// The ground-truth sweep must have no infeasible holes: check the
	// worst corner (max everything) and a sample of corners.
	s := paperSpace(t)
	cfg := chip.DefaultConfig()
	corners := []int{0, s.Size() - 1, s.Size() / 2, 999, 123456}
	for _, idx := range corners {
		p := s.Point(idx)
		d := chip.Design{N: int(p[3] + 0.5), CoreArea: p[0], L1Area: p[1], L2Area: p[2]}
		if err := cfg.CheckFeasible(d); err != nil {
			t.Fatalf("index %d infeasible: %v", idx, err)
		}
	}
	// Explicit worst case.
	var worst []int
	for _, prm := range s.Params {
		worst = append(worst, len(prm.Values)-1)
	}
	p := s.PointAt(worst)
	d := chip.Design{N: int(p[3] + 0.5), CoreArea: p[0], L1Area: p[1], L2Area: p[2]}
	if err := cfg.CheckFeasible(d); err != nil {
		t.Fatalf("max corner infeasible: %v", err)
	}
}

func TestIndexCoordsRoundTrip(t *testing.T) {
	s := paperSpace(t)
	for _, idx := range []int{0, 1, 9, 10, 999999, 123456, 987654} {
		coords := s.Coords(idx)
		if got := s.Index(coords); got != idx {
			t.Fatalf("round trip %d → %v → %d", idx, coords, got)
		}
	}
}

func TestPointMatchesPointAt(t *testing.T) {
	s := paperSpace(t)
	idx := 424242
	p1 := s.Point(idx)
	p2 := s.PointAt(s.Coords(idx))
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("Point mismatch at dim %d", i)
		}
	}
}

func TestNearest(t *testing.T) {
	s, err := NewSpace(Param{Name: "x", Values: []float64{1, 2, 4, 8}})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		v    float64
		want int
	}{{0, 0}, {1.4, 0}, {1.6, 1}, {3.5, 2}, {100, 3}}
	for _, c := range cases {
		if got := s.Nearest(0, c.v); got != c.want {
			t.Errorf("Nearest(%v) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestDimIndex(t *testing.T) {
	s := paperSpace(t)
	for i, name := range []string{DimA0, DimA1, DimA2, DimN, DimIssue, DimROB} {
		got, err := s.DimIndex(name)
		if err != nil || got != i {
			t.Fatalf("DimIndex(%s) = %d, %v", name, got, err)
		}
	}
	if _, err := s.DimIndex("nope"); err == nil {
		t.Error("unknown dim accepted")
	}
}

func TestSliceIndices(t *testing.T) {
	s, _ := NewSpace(
		Param{Name: "a", Values: []float64{0, 1}},
		Param{Name: "b", Values: []float64{0, 1, 2}},
		Param{Name: "c", Values: []float64{0, 1}},
	)
	slice := s.SliceIndices(map[int]int{0: 1, 2: 0})
	if len(slice) != 3 {
		t.Fatalf("slice size = %d, want 3", len(slice))
	}
	for _, idx := range slice {
		coords := s.Coords(idx)
		if coords[0] != 1 || coords[2] != 0 {
			t.Fatalf("slice member %v violates fixed dims", coords)
		}
	}
}

func TestNeighborhood(t *testing.T) {
	s, _ := NewSpace(
		Param{Name: "a", Values: []float64{0, 1, 2, 3, 4}},
		Param{Name: "b", Values: []float64{0, 1, 2, 3, 4}},
	)
	center := []int{2, 2}
	nb := s.Neighborhood(center, 1, []int{0, 1})
	if len(nb) != 9 {
		t.Fatalf("radius-1 2-D neighborhood = %d points, want 9", len(nb))
	}
	// Edge clipping.
	nb = s.Neighborhood([]int{0, 0}, 1, []int{0, 1})
	if len(nb) != 4 {
		t.Fatalf("corner neighborhood = %d points, want 4", len(nb))
	}
	// Zero radius: only the center.
	nb = s.Neighborhood(center, 0, []int{0, 1})
	if len(nb) != 1 {
		t.Fatalf("radius-0 neighborhood = %d", len(nb))
	}
	// Negative radius treated as zero.
	nb = s.Neighborhood(center, -3, []int{0})
	if len(nb) != 1 {
		t.Fatalf("negative radius neighborhood = %d", len(nb))
	}
}

func TestSweepMatchesSequential(t *testing.T) {
	s, _ := NewSpace(
		Param{Name: "x", Values: []float64{1, 2, 3, 4, 5}},
		Param{Name: "y", Values: []float64{1, 2, 3, 4}},
	)
	eval := EvaluatorFunc(func(p []float64) float64 { return p[0]*10 + p[1] })
	par := Sweep(context.Background(), eval, s, 4)
	seq := Sweep(context.Background(), eval, s, 1)
	for i := range par {
		if par[i] != seq[i] {
			t.Fatalf("parallel/sequential mismatch at %d", i)
		}
	}
	idx, v := Best(par)
	if v != 11 || s.Point(idx)[0] != 1 || s.Point(idx)[1] != 1 {
		t.Fatalf("Best = %d (%v)", idx, v)
	}
}

func TestSweepIndicesPartial(t *testing.T) {
	s, _ := NewSpace(Param{Name: "x", Values: []float64{0, 1, 2, 3}})
	eval := EvaluatorFunc(func(p []float64) float64 { return p[0] })
	vals := SweepIndices(context.Background(), eval, s, []int{1, 3}, 2)
	if !math.IsNaN(vals[0]) || !math.IsNaN(vals[2]) {
		t.Fatal("unevaluated entries not NaN")
	}
	if vals[1] != 1 || vals[3] != 3 {
		t.Fatalf("evaluated entries wrong: %v", vals)
	}
	idx, v := Best(vals)
	if idx != 1 || v != 1 {
		t.Fatalf("Best over partial = %d, %v", idx, v)
	}
}

func TestBestEmptyAndInfinite(t *testing.T) {
	if idx, _ := Best(nil); idx != -1 {
		t.Fatal("Best(nil)")
	}
	if idx, _ := Best([]float64{math.Inf(1), math.NaN()}); idx != -1 {
		t.Fatal("Best with no finite entries")
	}
}

func TestReducedSpace(t *testing.T) {
	cfg := chip.DefaultConfig()
	s, err := ReducedSpace(cfg, 3)
	if err != nil {
		t.Fatalf("ReducedSpace: %v", err)
	}
	if s.Size() != 729 {
		t.Fatalf("reduced size = %d, want 3^6", s.Size())
	}
	// Largest values preserved.
	full, _ := PaperSpace(cfg)
	for d := range s.Params {
		fv := full.Params[d].Values
		rv := s.Params[d].Values
		if rv[len(rv)-1] != fv[len(fv)-1] {
			t.Fatalf("dim %d: max value %v != full max %v", d, rv[len(rv)-1], fv[len(fv)-1])
		}
	}
	if _, err := ReducedSpace(cfg, 0); err == nil {
		t.Error("per=0 accepted")
	}
	if _, err := ReducedSpace(cfg, 11); err == nil {
		t.Error("per=11 accepted")
	}
}

func TestSimEvaluatorFeasibility(t *testing.T) {
	ev, err := NewSimEvaluator(chip.DefaultConfig(), "stream", 1<<20, 2, 4000, 7)
	if err != nil {
		t.Fatalf("NewSimEvaluator: %v", err)
	}
	// Feasible point.
	good := []float64{4, 1, 4, 4, 4, 128}
	v := ev.Evaluate(good)
	if math.IsInf(v, 1) || v <= 0 {
		t.Fatalf("feasible point scored %v", v)
	}
	// Infeasible: 32 cores × huge areas.
	bad := []float64{40, 10, 40, 32, 4, 128}
	if !math.IsInf(ev.Evaluate(bad), 1) {
		t.Fatal("infeasible point not +Inf")
	}
	// Wrong dimension count.
	if !math.IsInf(ev.Evaluate([]float64{1, 2}), 1) {
		t.Fatal("short point not +Inf")
	}
	if _, err := NewSimEvaluator(chip.DefaultConfig(), "nope", 1<<20, 2, 4000, 7); err == nil {
		t.Error("unknown workload accepted")
	}
	if _, err := NewSimEvaluator(chip.DefaultConfig(), "stream", 1<<20, 2, 0, 7); err == nil {
		t.Error("zero refs accepted")
	}
}

func TestSimEvaluatorPrefersCaches(t *testing.T) {
	// For an out-of-L1 working set, more L1 area at the same core count
	// must not hurt.
	ev, err := NewSimEvaluator(chip.DefaultConfig(), "fluidanimate", 1<<22, 2, 8000, 7)
	if err != nil {
		t.Fatalf("NewSimEvaluator: %v", err)
	}
	small := ev.Evaluate([]float64{4, 0.25, 4, 4, 4, 128})
	large := ev.Evaluate([]float64{4, 4, 4, 4, 4, 128})
	if large > small {
		t.Fatalf("4 mm² L1 (%v cycles) slower than 0.25 mm² (%v)", large, small)
	}
}

func TestSimEvaluatorDeterministic(t *testing.T) {
	ev, err := NewSimEvaluator(chip.DefaultConfig(), "stencil", 1<<20, 2, 4000, 7)
	if err != nil {
		t.Fatalf("NewSimEvaluator: %v", err)
	}
	p := []float64{4, 1, 4, 2, 4, 128}
	if a, b := ev.Evaluate(p), ev.Evaluate(p); a != b {
		t.Fatalf("nondeterministic: %v vs %v", a, b)
	}
}

func TestModelEvaluator(t *testing.T) {
	m := core.Model{Chip: chip.DefaultConfig(), App: core.FluidanimateApp()}
	ev := &ModelEvaluator{Model: m}
	good := ev.Evaluate([]float64{4, 1, 4, 8, 4, 128})
	if math.IsInf(good, 1) {
		t.Fatal("feasible point infinite")
	}
	// Wider issue and bigger ROB improve the corrected time.
	better := ev.Evaluate([]float64{4, 1, 4, 8, 8, 256})
	if better >= good {
		t.Fatalf("wider core not faster: %v vs %v", better, good)
	}
	if !math.IsInf(ev.Evaluate([]float64{400, 1, 4, 8, 4, 128}), 1) {
		t.Fatal("infeasible point not +Inf")
	}
	if !math.IsInf(ev.Evaluate([]float64{1}), 1) {
		t.Fatal("short point not +Inf")
	}
}
