package dse

import (
	"context"
	"math"
	"testing"

	"repro/internal/chip"
)

func TestBestEdgeCases(t *testing.T) {
	// All-NaN: nothing selectable, Best reports "no result".
	if idx, _ := Best([]float64{math.NaN(), math.NaN(), math.NaN()}); idx != -1 {
		t.Fatalf("Best(all NaN) = %d, want -1", idx)
	}
	// -Inf is a legitimate (if degenerate) minimum and must win over any
	// finite value.
	vals := []float64{3, math.Inf(-1), 1}
	if idx, v := Best(vals); idx != 1 || !math.IsInf(v, -1) {
		t.Fatalf("Best with -Inf = %d (%v)", idx, v)
	}
	// Ties break deterministically to the lowest index, so concurrent
	// sweeps and resumed sweeps always report the same optimum.
	vals = []float64{5, 2, 2, 2}
	if idx, v := Best(vals); idx != 1 || v != 2 {
		t.Fatalf("tie broke to %d (%v), want lowest index 1", idx, v)
	}
	// NaN holes between finite entries are skipped, not propagated.
	vals = []float64{math.NaN(), 4, math.NaN(), 2}
	if idx, v := Best(vals); idx != 3 || v != 2 {
		t.Fatalf("Best over NaN holes = %d (%v)", idx, v)
	}
}

func TestSimEvaluatorFaultScoresNaN(t *testing.T) {
	// Regression: a simulator fault must score NaN, not +Inf. +Inf is the
	// legitimate "infeasible design" score; if faults also returned +Inf a
	// faulty-but-feasible configuration would be indistinguishable from a
	// design that doesn't fit — and Best must never pick either.
	ev, err := NewSimEvaluator(chip.DefaultConfig(), "stream", 1<<20, 2, 4000, 7)
	if err != nil {
		t.Fatalf("NewSimEvaluator: %v", err)
	}
	// Force a simulator fault on a feasible point: break the workload name
	// after construction so Config() succeeds but the run cannot.
	ev.Workload = "no-such-workload"
	good := []float64{4, 1, 4, 4, 4, 128}
	v := ev.Evaluate(good)
	if !math.IsNaN(v) {
		t.Fatalf("faulted evaluation scored %v, want NaN", v)
	}
	if _, err := ev.EvaluateCtx(context.Background(), good); err == nil {
		t.Fatal("faulted EvaluateCtx returned nil error")
	}
	// The fault score can never be selected.
	if idx, _ := Best([]float64{v}); idx != -1 {
		t.Fatalf("Best selected a fault score (idx %d)", idx)
	}
	// Infeasible stays +Inf even on the broken evaluator: feasibility is
	// checked before the simulator runs.
	bad := []float64{40, 10, 40, 32, 4, 128}
	if !math.IsInf(ev.Evaluate(bad), 1) {
		t.Fatal("infeasible point not +Inf")
	}
}

func TestSplitRefs(t *testing.T) {
	cases := []struct {
		total, cores int
	}{
		{4000, 1}, {4000, 3}, {4000, 7}, {4001, 7}, {10, 32}, {0, 4}, {1, 1},
	}
	for _, c := range cases {
		refs := SplitRefs(c.total, c.cores)
		if len(refs) != c.cores {
			t.Fatalf("SplitRefs(%d,%d): %d entries", c.total, c.cores, len(refs))
		}
		sum, min, max := 0, refs[0], refs[0]
		for _, r := range refs {
			sum += r
			if r < min {
				min = r
			}
			if r > max {
				max = r
			}
		}
		// Total invariance: no remainder lost to truncating division.
		if sum != c.total {
			t.Fatalf("SplitRefs(%d,%d) sums to %d", c.total, c.cores, sum)
		}
		// Balance: the split never skews by more than one reference.
		if max-min > 1 {
			t.Fatalf("SplitRefs(%d,%d) unbalanced: min %d max %d", c.total, c.cores, min, max)
		}
	}
	// Degenerate inputs yield a zero-filled (or empty) slice, not a panic.
	if refs := SplitRefs(100, 0); len(refs) != 0 {
		t.Fatalf("cores=0 gave %v", refs)
	}
	refs := SplitRefs(-5, 3)
	for _, r := range refs {
		if r != 0 {
			t.Fatalf("negative total gave %v", refs)
		}
	}
}
