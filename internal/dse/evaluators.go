package dse

import (
	"context"
	"fmt"
	"math"
	"sync"

	"repro/internal/chip"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/sim/cache"
	"repro/internal/trace"
)

// Dimension names of the paper's six-parameter space, in point order.
const (
	DimA0    = "A0"
	DimA1    = "A1"
	DimA2    = "A2"
	DimN     = "N"
	DimIssue = "Issue"
	DimROB   = "ROB"
)

// PaperSpace returns the §IV design space: six parameters, ten values
// each (10⁶ configurations), chosen so every combination fits the chip
// budget of cfg (so the ground-truth sweep has no infeasible holes, as in
// the paper's full-space simulation).
func PaperSpace(cfg chip.Config) (Space, error) {
	ns := []float64{1, 2, 3, 4, 6, 8, 12, 16, 24, 32}
	maxPerCore := (cfg.TotalArea - cfg.FixedArea) / ns[len(ns)-1]
	// Split the per-core budget so A0+A1+A2 maxima sum below maxPerCore.
	a0Max := 0.42 * maxPerCore
	a1Max := 0.18 * maxPerCore
	a2Max := 0.38 * maxPerCore
	steps := func(max float64) []float64 {
		vals := make([]float64, 10)
		for i := range vals {
			vals[i] = max * float64(i+1) / 10
		}
		return vals
	}
	return NewSpace(
		Param{Name: DimA0, Values: steps(a0Max)},
		Param{Name: DimA1, Values: steps(a1Max)},
		Param{Name: DimA2, Values: steps(a2Max)},
		Param{Name: DimN, Values: ns},
		Param{Name: DimIssue, Values: []float64{1, 2, 3, 4, 5, 6, 7, 8, 12, 16}},
		Param{Name: DimROB, Values: []float64{16, 32, 48, 64, 96, 128, 160, 192, 224, 256}},
	)
}

// ReducedSpace returns a smaller space with the same six dimensions and
// `per` values per dimension (per ≤ 10), for tests and benches where the
// full 10⁶-point sweep would be too slow. Values subsample PaperSpace's.
func ReducedSpace(cfg chip.Config, per int) (Space, error) {
	if per < 1 || per > 10 {
		return Space{}, fmt.Errorf("dse: reduced space needs 1..10 values per dim, got %d", per)
	}
	full, err := PaperSpace(cfg)
	if err != nil {
		return Space{}, err
	}
	params := make([]Param, len(full.Params))
	for i, p := range full.Params {
		vals := make([]float64, per)
		for j := 0; j < per; j++ {
			// Spread selections across the full range, always including
			// the largest value.
			k := (j + 1) * len(p.Values) / per
			vals[j] = p.Values[k-1]
		}
		params[i] = Param{Name: p.Name, Values: vals}
	}
	return NewSpace(params...)
}

// SimEvaluator scores configurations with the many-core simulator: a
// fixed-size workload (TotalRefs references) is split evenly across the
// N cores and the makespan in cycles is the score. The evaluator is
// stateless per call and therefore safe for concurrent sweeps.
type SimEvaluator struct {
	Chip      chip.Config // area budget, densities, Pollack constants
	Workload  string
	WSBytes   uint64
	MeanGap   float64
	TotalRefs int
	Seed      uint64

	// Template hardware for parts not in the design space.
	L1Template cache.Config
	L2Template cache.Config
	Base       sim.Config // DRAM and NoC taken from here
}

// NewSimEvaluator builds an evaluator with default templates.
func NewSimEvaluator(chipCfg chip.Config, workload string, wsBytes uint64, meanGap float64, totalRefs int, seed uint64) (*SimEvaluator, error) {
	if totalRefs < 1 {
		return nil, fmt.Errorf("dse: totalRefs %d below 1", totalRefs)
	}
	if _, err := trace.ByName(workload, wsBytes, meanGap, seed); err != nil {
		return nil, err
	}
	return &SimEvaluator{
		Chip:       chipCfg,
		Workload:   workload,
		WSBytes:    wsBytes,
		MeanGap:    meanGap,
		TotalRefs:  totalRefs,
		Seed:       seed,
		L1Template: cache.DefaultL1(),
		L2Template: cache.DefaultL2(),
		Base:       sim.DefaultConfig(1),
	}, nil
}

// Config translates a design point into a simulator configuration,
// returning an error for infeasible points.
func (e *SimEvaluator) Config(point []float64) (sim.Config, error) {
	if len(point) != 6 {
		return sim.Config{}, fmt.Errorf("dse: point has %d dims, want 6", len(point))
	}
	a0, a1, a2 := point[0], point[1], point[2]
	n := int(point[3] + 0.5)
	issue := int(point[4] + 0.5)
	rob := int(point[5] + 0.5)
	d := chip.Design{N: n, CoreArea: a0, L1Area: a1, L2Area: a2}
	if err := e.Chip.CheckFeasible(d); err != nil {
		return sim.Config{}, err
	}
	cfg := sim.DefaultConfig(n)
	cfg.DRAM = e.Base.DRAM
	cfg.NoC = e.Base.NoC
	cfg.NoC.Nodes = n
	cfg.L1 = e.L1Template
	cfg.L1.SizeKB = clampKB(e.Chip.L1SizeKB(d))
	cfg.L2 = e.L2Template
	cfg.L2.SizeKB = clampKB(e.Chip.L2SizeKB(d) * float64(n)) // shared L2 = N slices
	cfg.Core = e.Base.Core
	cfg.Core.IssueWidth = issue
	cfg.Core.ROB = rob
	cfg.Core.ComputeCPI = e.Chip.Pollack.CPIExe(a0)
	return cfg, nil
}

func clampKB(kb float64) int {
	v := int(kb + 0.5)
	if v < 1 {
		return 1
	}
	return v
}

// Evaluate implements Evaluator: the simulated makespan in cycles, +Inf
// for infeasible configurations, or NaN when the simulator faulted.
// Infeasible and faulted are distinct outcomes on purpose: +Inf is a
// legitimate score ("this design does not fit"), while NaN marks a
// swallowed error, which Best skips so a faulty run can never be selected
// as the optimum.
func (e *SimEvaluator) Evaluate(point []float64) float64 {
	//lint:allow ctxflow the plain Evaluator interface carries no context by contract
	v, err := e.EvaluateCtx(context.Background(), point)
	if err != nil {
		return math.NaN()
	}
	return v
}

// Fingerprint implements engine.Fingerprinter: it covers every field the
// simulated score depends on (chip constants, workload, working set,
// reference budget, seed and the hardware templates), so two evaluators
// share memoized values only when they compute the same function.
func (e *SimEvaluator) Fingerprint() string {
	return fmt.Sprintf("dse.SimEvaluator{chip=%+v workload=%q ws=%d gap=%x refs=%d seed=%d l1=%+v l2=%+v base=%+v}",
		e.Chip, e.Workload, e.WSBytes, e.MeanGap, e.TotalRefs, e.Seed,
		e.L1Template, e.L2Template, e.Base)
}

// SplitRefs distributes total references across cores with no remainder
// loss: every core receives total/cores, and the first total%cores cores
// one extra, so the summed workload is invariant in the core count (a
// truncating division here would shrink the simulated work as N grows and
// bias cross-N comparisons).
func SplitRefs(total, cores int) []int {
	refs := make([]int, cores)
	if cores < 1 || total < 0 {
		return refs
	}
	base, rem := total/cores, total%cores
	for i := range refs {
		refs[i] = base
		if i < rem {
			refs[i]++
		}
	}
	return refs
}

// EvaluateCtx implements CtxEvaluator. Infeasible configurations score
// +Inf with a nil error (a legitimate result, not a fault); simulator
// failures and cancellation surface as errors so the resilient sweep can
// retry or abort.
func (e *SimEvaluator) EvaluateCtx(ctx context.Context, point []float64) (float64, error) {
	cfg, err := e.Config(point)
	if err != nil {
		return math.Inf(1), nil
	}
	res, err := sim.RunWorkloadCountsCtx(ctx, cfg, e.Workload, e.WSBytes, e.MeanGap, SplitRefs(e.TotalRefs, cfg.Cores), e.Seed)
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return math.NaN(), cerr
		}
		return math.NaN(), err
	}
	return float64(res.Cycles), nil
}

// ModelEvaluator scores configurations with the analytic C²-Bound model
// plus simple first-order corrections for the two microarchitectural
// dimensions the analytic model does not carry (issue width and ROB).
// It is the catalog evaluator behind the server, the CLIs and the
// benchmarks; whole planes ride the engine's batched path through the
// compiled (fingerprint-specialized) kernel, which is bit-identical to
// the scalar path. Use by pointer — the lazy compile state must not be
// copied.
type ModelEvaluator struct {
	Model core.Model

	compileOnce sync.Once
	compiled    *core.Compiled
	compileErr  error
}

// EvaluateCtx implements CtxEvaluator.
func (e *ModelEvaluator) EvaluateCtx(ctx context.Context, point []float64) (float64, error) {
	if err := ctx.Err(); err != nil {
		return math.NaN(), err
	}
	return e.Evaluate(point), nil
}

// Fingerprint implements engine.Fingerprinter via the model's canonical
// identity.
func (e *ModelEvaluator) Fingerprint() string {
	return "dse.ModelEvaluator{" + e.Model.Fingerprint() + "}"
}

// Evaluate implements Evaluator.
func (e *ModelEvaluator) Evaluate(point []float64) float64 {
	if len(point) != 6 {
		return math.Inf(1)
	}
	d := chip.Design{
		N:        int(point[3] + 0.5),
		CoreArea: point[0],
		L1Area:   point[1],
		L2Area:   point[2],
	}
	t := e.Model.TimeAt(d)
	if math.IsInf(t, 1) {
		return t
	}
	issue, rob := point[4], point[5]
	// Narrow issue serializes instruction delivery; a small ROB caps the
	// memory overlap the C-AMAT concurrency assumed.
	return t * (1 + 0.6/issue) * (1 + 24/rob)
}

// EvaluateBatch implements engine.BatchEvaluator: the whole plane runs
// through the compiled kernel (constants folded once per fingerprint),
// bit-identical to per-point Evaluate. The model compiles lazily on the
// first batch; a profile the compiler rejects falls back to the scalar
// path so the two paths can never disagree.
func (e *ModelEvaluator) EvaluateBatch(ctx context.Context, points [][]float64, out []float64) error {
	e.compileOnce.Do(func() {
		e.compiled, e.compileErr = e.Model.Compile()
	})
	if e.compileErr != nil {
		for i, p := range points {
			if i&255 == 0 {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			out[i] = e.Evaluate(p)
		}
		return nil
	}
	c := e.compiled
	for i, p := range points {
		if i&255 == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		if len(p) != 6 {
			out[i] = math.Inf(1)
			continue
		}
		t := c.TimeAt(chip.Design{
			N:        int(p[3] + 0.5),
			CoreArea: p[0],
			L1Area:   p[1],
			L2Area:   p[2],
		})
		if math.IsInf(t, 1) {
			out[i] = t
			continue
		}
		issue, rob := p[4], p[5]
		out[i] = t * (1 + 0.6/issue) * (1 + 24/rob)
	}
	return nil
}
