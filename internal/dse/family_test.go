package dse

import (
	"context"
	"math"
	"testing"

	"repro/internal/chip"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/model"
	"repro/internal/robust"
)

func familyModel(t *testing.T, name string) model.Model {
	t.Helper()
	m, err := model.New(name, model.Config{Chip: chip.DefaultConfig(), App: core.TMMApp()})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestSpaceForMatchesReducedSpace pins the compatibility contract: the
// family-generic space of the c2bound family equals the paper-space
// helpers exactly, both full (PaperSpace) and subsampled (ReducedSpace),
// so old and new callers sweep identical designs.
func TestSpaceForMatchesReducedSpace(t *testing.T) {
	m := familyModel(t, model.FamilyC2Bound)
	for _, per := range []int{0, 1, 2, 3, 5, 10} {
		got, err := SpaceFor(m, per)
		if err != nil {
			t.Fatal(err)
		}
		var want Space
		if per == 0 {
			want, err = PaperSpace(chip.DefaultConfig())
		} else {
			want, err = ReducedSpace(chip.DefaultConfig(), per)
		}
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Params) != len(want.Params) {
			t.Fatalf("per=%d: %d dims, want %d", per, len(got.Params), len(want.Params))
		}
		for i := range got.Params {
			if got.Params[i].Name != want.Params[i].Name {
				t.Fatalf("per=%d dim %d: name %q, want %q", per, i, got.Params[i].Name, want.Params[i].Name)
			}
			if len(got.Params[i].Values) != len(want.Params[i].Values) {
				t.Fatalf("per=%d dim %s: %d values, want %d", per, got.Params[i].Name, len(got.Params[i].Values), len(want.Params[i].Values))
			}
			for j := range got.Params[i].Values {
				if math.Float64bits(got.Params[i].Values[j]) != math.Float64bits(want.Params[i].Values[j]) {
					t.Fatalf("per=%d dim %s[%d]: %v, want %v", per, got.Params[i].Name, j, got.Params[i].Values[j], want.Params[i].Values[j])
				}
			}
		}
	}
}

// TestFamilyEvaluatorMatchesModelEvaluator pins the c2bound family to
// the original catalog evaluator bit-for-bit over a reduced space.
func TestFamilyEvaluatorMatchesModelEvaluator(t *testing.T) {
	m := familyModel(t, model.FamilyC2Bound)
	fam := NewFamilyEvaluator(m)
	old := &ModelEvaluator{Model: core.Model{Chip: chip.DefaultConfig(), App: core.TMMApp()}}
	s, err := ReducedSpace(chip.DefaultConfig(), 3)
	if err != nil {
		t.Fatal(err)
	}
	for idx := 0; idx < s.Size(); idx++ {
		p := s.Point(idx)
		got := fam.Evaluate(p)
		want := old.Evaluate(p)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("point %v: family=%x model=%x", p, math.Float64bits(got), math.Float64bits(want))
		}
	}
}

// TestFamilyBatchMatchesScalar is the per-family engine differential:
// the batched path (compiled kernel, chunked dispatch) must be
// bit-identical to the scalar per-point path for every family.
func TestFamilyBatchMatchesScalar(t *testing.T) {
	for _, name := range model.Names() {
		t.Run(name, func(t *testing.T) {
			m := familyModel(t, name)
			s, err := SpaceFor(m, 4)
			if err != nil {
				t.Fatal(err)
			}
			points := make([][]float64, s.Size())
			for i := range points {
				points[i] = s.Point(i)
			}
			ctx := context.Background()
			run := func(disableBatch bool) []float64 {
				eng := engine.New(engine.Options{Workers: 4, DisableBatch: disableBatch})
				out := make([]float64, len(points))
				if err := eng.EvaluateBatch(ctx, NewFamilyEvaluator(m), points, out); err != nil {
					t.Fatal(err)
				}
				return out
			}
			batched, scalar := run(false), run(true)
			for i := range batched {
				if math.Float64bits(batched[i]) != math.Float64bits(scalar[i]) {
					t.Fatalf("%s point %v: batched=%x scalar=%x", name, points[i], math.Float64bits(batched[i]), math.Float64bits(scalar[i]))
				}
			}
		})
	}
}

// TestFamilyWarmHitZeroAlloc asserts the warm memo probe stays
// allocation-free when the evaluator is a family model.
func TestFamilyWarmHitZeroAlloc(t *testing.T) {
	m := familyModel(t, model.FamilyGPU)
	eng := engine.New(engine.Options{Workers: 1})
	// Box the evaluator once; a per-call conversion would charge the
	// caller an allocation the engine is not making.
	var ev robust.Evaluator = NewFamilyEvaluator(m)
	point := []float64{8, 64, 0.5}
	ctx := context.Background()
	if _, err := eng.Evaluate(ctx, ev, point); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		o := eng.Do(ctx, ev, point)
		if !o.CacheHit {
			t.Fatal("expected a warm hit")
		}
	})
	if allocs != 0 {
		t.Fatalf("warm family hit allocates %.1f objects/op, want 0", allocs)
	}
}

// TestFamilyCacheIsolation proves two families with identical parameter
// points never share memo entries: the fingerprint namespace forces two
// raw evaluations and two cache entries even for byte-identical points.
func TestFamilyCacheIsolation(t *testing.T) {
	// Two throwaway families whose spaces coincide on the same 1-dim
	// point but whose objectives differ.
	mkFamily := func(name string, scale float64) model.Model {
		return isoModel{name: name, scale: scale}
	}
	a, b := mkFamily("iso-a", 2), mkFamily("iso-b", 3)
	eng := engine.New(engine.Options{Workers: 1})
	ctx := context.Background()
	point := []float64{4}

	va, err := eng.Evaluate(ctx, NewFamilyEvaluator(a), point)
	if err != nil {
		t.Fatal(err)
	}
	vb, err := eng.Evaluate(ctx, NewFamilyEvaluator(b), point)
	if err != nil {
		t.Fatal(err)
	}
	if va == vb {
		t.Fatalf("objectives coincide (%v); the test needs distinguishable families", va)
	}
	st := eng.Stats()
	if st.Evaluations != 2 {
		t.Fatalf("identical points across families shared an evaluation: %d raw evals, want 2", st.Evaluations)
	}
	if st.CacheHits != 0 {
		t.Fatalf("cross-family cache hit: %d", st.CacheHits)
	}
	// Same family, same point: now it must hit.
	if _, err := eng.Evaluate(ctx, NewFamilyEvaluator(a), point); err != nil {
		t.Fatal(err)
	}
	st = eng.Stats()
	if st.CacheHits != 1 || st.Evaluations != 2 {
		t.Fatalf("same-family re-evaluation missed the cache: %+v", st)
	}

	// The real families' fingerprints are pairwise distinct for one
	// config, too.
	seen := map[string]string{}
	for _, name := range model.Names() {
		fp := familyModel(t, name).Fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Fatalf("families %s and %s share fingerprint %q", prev, name, fp)
		}
		seen[fp] = name
	}
}

// isoModel is a minimal synthetic family for the isolation test. Both
// instances evaluate t = scale·x over the same 1-dim space.
type isoModel struct {
	name  string
	scale float64
}

func (m isoModel) Fingerprint() string {
	return model.FingerprintPrefix(m.name) + "iso"
}

func (m isoModel) Space() model.Space {
	return model.Space{Params: []model.Param{{Name: "X", Lo: 0, Hi: 10, Grid: []float64{1, 2, 4}}}}
}

func (m isoModel) Compile() (model.Kernel, error) { return isoKernel(m), nil }

type isoKernel isoModel

func (k isoKernel) TimeAt(p []float64) float64 { return k.scale * p[0] }
func (k isoKernel) TimeWorkAt(p []float64) (float64, float64, bool) {
	return k.scale * p[0], 1, true
}
