package dse

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"

	"repro/internal/chip"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/robust"
)

// The differential suite pins the central batched-evaluation invariant:
// the batch path must be indistinguishable from the scalar path — same
// bits, same cache accounting, same sweep optimum — across every catalog
// model, with and without injected faults.

func diffModels() []core.Model {
	cfg := chip.DefaultConfig()
	return []core.Model{
		{Chip: cfg, App: core.TMMApp()},
		{Chip: cfg, App: core.StencilApp()},
		{Chip: cfg, App: core.FFTApp()},
		{Chip: cfg, App: core.FluidanimateApp()},
	}
}

// runDiffSweep sweeps the whole space twice on one engine (cold pass then
// warm pass) and returns the final values plus the engine's stats.
func runDiffSweep(t *testing.T, ev CtxEvaluator, s Space, disableBatch bool, passes int) ([]float64, engine.Stats) {
	t.Helper()
	eng := engine.New(engine.Options{
		Workers:      4,
		CacheSize:    s.Size() + 16,
		Retry:        robust.RetryPolicy{MaxAttempts: 10},
		DisableBatch: disableBatch,
	})
	var values []float64
	for p := 0; p < passes; p++ {
		var rep SweepReport
		var err error
		values, rep, err = SweepCtx(context.Background(), ev, s, nil, SweepOptions{Engine: eng})
		if err != nil {
			t.Fatalf("sweep (disableBatch=%v pass=%d): %v", disableBatch, p, err)
		}
		if len(rep.Failed) != 0 {
			t.Fatalf("sweep (disableBatch=%v pass=%d): %d points failed, first %+v",
				disableBatch, p, len(rep.Failed), rep.Failed[0])
		}
	}
	return values, eng.Stats()
}

// TestDifferentialBatchVsScalar runs the same sweep through the batched
// and the scalar engine paths for every catalog model and demands
// bit-identical values, identical cache accounting, and the same optimum.
func TestDifferentialBatchVsScalar(t *testing.T) {
	for _, m := range diffModels() {
		m := m
		t.Run(m.App.Name, func(t *testing.T) {
			t.Parallel()
			s, err := ReducedSpace(m.Chip, 4)
			if err != nil {
				t.Fatalf("ReducedSpace: %v", err)
			}
			// Fresh evaluators per path: the sync.Once-guarded compiled
			// kernel must agree with the scalar model on its own, not by
			// sharing state.
			batchVals, batchStats := runDiffSweep(t, &ModelEvaluator{Model: m}, s, false, 2)
			scalVals, scalStats := runDiffSweep(t, &ModelEvaluator{Model: m}, s, true, 2)

			if len(batchVals) != len(scalVals) {
				t.Fatalf("value lengths differ: %d vs %d", len(batchVals), len(scalVals))
			}
			for i := range batchVals {
				if math.Float64bits(batchVals[i]) != math.Float64bits(scalVals[i]) {
					t.Fatalf("index %d: batch %x (%v) != scalar %x (%v)",
						i, math.Float64bits(batchVals[i]), batchVals[i],
						math.Float64bits(scalVals[i]), scalVals[i])
				}
			}
			if batchStats.Requests != scalStats.Requests ||
				batchStats.Evaluations != scalStats.Evaluations ||
				batchStats.CacheHits != scalStats.CacheHits ||
				batchStats.CacheMisses != scalStats.CacheMisses {
				t.Fatalf("stats diverge: batch %+v scalar %+v", batchStats, scalStats)
			}
			n := uint64(s.Size())
			if batchStats.Evaluations != n || batchStats.CacheHits != n {
				t.Fatalf("want %d evaluations and %d warm hits, got %+v", n, n, batchStats)
			}
			bi, bv := Best(batchVals)
			si, sv := Best(scalVals)
			if bi != si || math.Float64bits(bv) != math.Float64bits(sv) {
				t.Fatalf("optima diverge: batch (%d, %v) scalar (%d, %v)", bi, bv, si, sv)
			}
		})
	}
}

// errTransient is the injected first-attempt failure.
var errTransient = errors.New("injected transient fault")

// faultInjector wraps a batch-capable evaluator and fails the first
// attempt for a deterministic ~20% of points, on both the scalar and the
// batched path, so the differential test exercises the retry machinery.
type faultInjector struct {
	inner *ModelEvaluator

	mu   sync.Mutex
	seen map[uint64]bool // point key -> first attempt already failed
}

func newFaultInjector(m core.Model) *faultInjector {
	return &faultInjector{inner: &ModelEvaluator{Model: m}, seen: make(map[uint64]bool)}
}

// pointKey mixes the coordinates into a deterministic identity. A test
// space has far too few points for 64-bit collisions to matter.
func pointKey(point []float64) uint64 {
	h := uint64(1469598103934665603)
	for _, v := range point {
		h ^= math.Float64bits(v)
		h *= 1099511628211
	}
	return h
}

// shouldFail marks ~20% of points as transiently faulty.
func shouldFail(key uint64) bool { return key%5 == 0 }

// failFirst reports whether this call is the point's first attempt on a
// faulty point (and records the attempt).
func (f *faultInjector) failFirst(point []float64) bool {
	key := pointKey(point)
	if !shouldFail(key) {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.seen[key] {
		return false
	}
	f.seen[key] = true
	return true
}

func (f *faultInjector) EvaluateCtx(ctx context.Context, point []float64) (float64, error) {
	if f.failFirst(point) {
		return math.NaN(), errTransient
	}
	return f.inner.EvaluateCtx(ctx, point)
}

func (f *faultInjector) EvaluateBatch(ctx context.Context, points [][]float64, out []float64) error {
	failed := false
	for _, p := range points {
		if f.failFirst(p) {
			failed = true
		}
	}
	if failed {
		return errTransient
	}
	return f.inner.EvaluateBatch(ctx, points, out)
}

func (f *faultInjector) Fingerprint() string {
	return "dse.faulty{" + f.inner.Fingerprint() + "}"
}

// TestDifferentialBatchVsScalarWithFaults repeats the differential check
// with ~20% of points failing their first attempt. Retry counts differ by
// construction (a batch retries its whole chunk), so only values and
// optima must match — and they must match the fault-free run too.
func TestDifferentialBatchVsScalarWithFaults(t *testing.T) {
	for _, m := range diffModels() {
		m := m
		t.Run(m.App.Name, func(t *testing.T) {
			t.Parallel()
			s, err := ReducedSpace(m.Chip, 3)
			if err != nil {
				t.Fatalf("ReducedSpace: %v", err)
			}
			cleanVals, _ := runDiffSweep(t, &ModelEvaluator{Model: m}, s, false, 1)
			batchVals, _ := runDiffSweep(t, newFaultInjector(m), s, false, 1)
			scalVals, _ := runDiffSweep(t, newFaultInjector(m), s, true, 1)

			faulty := 0
			for i := 0; i < s.Size(); i++ {
				if shouldFail(pointKey(s.Point(i))) {
					faulty++
				}
			}
			if faulty == 0 {
				t.Fatal("fault pattern never fired; the test is vacuous")
			}
			for i := range batchVals {
				bb, sb, cb := math.Float64bits(batchVals[i]), math.Float64bits(scalVals[i]), math.Float64bits(cleanVals[i])
				if bb != sb || bb != cb {
					t.Fatalf("index %d: batch %v scalar %v clean %v", i, batchVals[i], scalVals[i], cleanVals[i])
				}
			}
			bi, bv := Best(batchVals)
			ci, cv := Best(cleanVals)
			if bi != ci || math.Float64bits(bv) != math.Float64bits(cv) {
				t.Fatalf("faulty optimum (%d, %v) != clean optimum (%d, %v)", bi, bv, ci, cv)
			}
		})
	}
}
