package dse

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
)

// checkpointVersion guards the on-disk format; bump on incompatible
// changes.
const checkpointVersion = 1

// Checkpoint is the JSON sweep-state snapshot: the space's signature plus
// the completed (index, value) pairs, sorted by index. Values are encoded
// as strings because JSON cannot represent NaN or ±Inf (infeasible
// configurations legitimately score +Inf); strconv's shortest round-trip
// format keeps resumed values bit-identical to freshly evaluated ones.
type Checkpoint struct {
	Version   int       `json:"version"`
	Signature string    `json:"signature"`
	Indices   []int     `json:"indices"`
	Values    []float64 `json:"-"`
	RawValues []string  `json:"values"`
}

// Signature fingerprints the space (dimension names and exact candidate
// values) so a checkpoint is never resumed against a different space.
func (s Space) Signature() string {
	h := fnv.New64a()
	for _, p := range s.Params {
		h.Write([]byte(p.Name))
		h.Write([]byte{0})
		for _, v := range p.Values {
			var b [8]byte
			bits := math.Float64bits(v)
			for i := 0; i < 8; i++ {
				b[i] = byte(bits >> (8 * i))
			}
			h.Write(b[:])
		}
		h.Write([]byte{0xff})
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// SaveCheckpoint writes the completed entries of a sweep atomically
// (temp file + rename), so a kill mid-write never corrupts the previous
// checkpoint.
func SaveCheckpoint(path string, s Space, values []float64, completed []int) error {
	ck := Checkpoint{Version: checkpointVersion, Signature: s.Signature()}
	ck.Indices = append([]int(nil), completed...)
	sort.Ints(ck.Indices)
	ck.RawValues = make([]string, len(ck.Indices))
	for i, idx := range ck.Indices {
		if idx < 0 || idx >= len(values) {
			return fmt.Errorf("dse: checkpoint index %d outside space of %d", idx, len(values))
		}
		ck.RawValues[i] = strconv.FormatFloat(values[idx], 'g', -1, 64)
	}
	data, err := json.Marshal(ck)
	if err != nil {
		return err
	}
	data = append(data, '\n')
	tmp := path + ".tmp"
	if dir := filepath.Dir(path); dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// LoadCheckpoint reads and validates a checkpoint file. The caller is
// responsible for comparing Signature against the target space.
func LoadCheckpoint(path string) (Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Checkpoint{}, err
	}
	var ck Checkpoint
	if err := json.Unmarshal(data, &ck); err != nil {
		return Checkpoint{}, fmt.Errorf("dse: checkpoint %q: %w", path, err)
	}
	if ck.Version != checkpointVersion {
		return Checkpoint{}, fmt.Errorf("dse: checkpoint %q has version %d, want %d", path, ck.Version, checkpointVersion)
	}
	if len(ck.RawValues) != len(ck.Indices) {
		return Checkpoint{}, fmt.Errorf("dse: checkpoint %q has %d values for %d indices", path, len(ck.RawValues), len(ck.Indices))
	}
	ck.Values = make([]float64, len(ck.RawValues))
	for i, raw := range ck.RawValues {
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			return Checkpoint{}, fmt.Errorf("dse: checkpoint %q value %d: %w", path, i, err)
		}
		ck.Values[i] = v
	}
	return ck, nil
}
