package dse

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
)

// checkpointVersion guards the on-disk format; bump on incompatible
// changes.
const checkpointVersion = 1

// Checkpoint is the JSON sweep-state snapshot: the space's signature plus
// the completed (index, value) pairs, sorted by index. Values are encoded
// as strings because JSON cannot represent NaN or ±Inf (infeasible
// configurations legitimately score +Inf); strconv's shortest round-trip
// format keeps resumed values bit-identical to freshly evaluated ones.
type Checkpoint struct {
	Version   int       `json:"version"`
	Signature string    `json:"signature"`
	Indices   []int     `json:"indices"`
	Values    []float64 `json:"-"`
	RawValues []string  `json:"values"`
}

// Signature fingerprints the space (dimension names and exact candidate
// values) so a checkpoint is never resumed against a different space.
func (s Space) Signature() string {
	h := fnv.New64a()
	for _, p := range s.Params {
		h.Write([]byte(p.Name))
		h.Write([]byte{0})
		for _, v := range p.Values {
			var b [8]byte
			bits := math.Float64bits(v)
			for i := 0; i < 8; i++ {
				b[i] = byte(bits >> (8 * i))
			}
			h.Write(b[:])
		}
		h.Write([]byte{0xff})
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// SaveCheckpoint writes the completed entries of a sweep durably and
// atomically: the temp file is written and fsynced before the rename,
// and the directory is fsynced after it, so neither a kill mid-write nor
// a power loss right after the rename can leave a corrupt or vanished
// checkpoint (rename alone orders nothing on a crash — the metadata can
// land before the data blocks).
func SaveCheckpoint(path string, s Space, values []float64, completed []int) error {
	ck := Checkpoint{Version: checkpointVersion, Signature: s.Signature()}
	ck.Indices = append([]int(nil), completed...)
	sort.Ints(ck.Indices)
	ck.RawValues = make([]string, len(ck.Indices))
	for i, idx := range ck.Indices {
		if idx < 0 || idx >= len(values) {
			return fmt.Errorf("dse: checkpoint index %d outside space of %d", idx, len(values))
		}
		ck.RawValues[i] = strconv.FormatFloat(values[idx], 'g', -1, 64)
	}
	data, err := json.Marshal(ck)
	if err != nil {
		return err
	}
	data = append(data, '\n')
	dir := filepath.Dir(path)
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	// The temp name is unique per writer (CreateTemp), not a fixed
	// path+".tmp": two concurrent savers aiming at the same checkpoint
	// used to interleave on one temp file and rename each other's partial
	// bytes into place. Each writer now publishes only a file it wrote
	// whole; last rename wins and both renamed states are complete.
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	if err := writeSync(tmp, data); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return syncDir(dir)
}

// writeSync writes data to the open file and fsyncs it before closing,
// so the bytes are on stable storage before the caller publishes the
// file.
func writeSync(f *os.File, data []byte) error {
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Chmod(0o644); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// syncDir fsyncs a directory so a just-renamed entry survives a crash.
// Platforms that refuse to fsync directories (the error shows up on some
// filesystems and on Windows) degrade to the pre-sync behavior.
func syncDir(dir string) error {
	if dir == "" {
		dir = "."
	}
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	_ = d.Sync()
	return nil
}

// LoadCheckpoint reads and validates a checkpoint file. The caller is
// responsible for comparing Signature against the target space.
func LoadCheckpoint(path string) (Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Checkpoint{}, err
	}
	var ck Checkpoint
	if err := json.Unmarshal(data, &ck); err != nil {
		return Checkpoint{}, fmt.Errorf("dse: checkpoint %q: %w", path, err)
	}
	if ck.Version != checkpointVersion {
		return Checkpoint{}, fmt.Errorf("dse: checkpoint %q has version %d, want %d", path, ck.Version, checkpointVersion)
	}
	if len(ck.RawValues) != len(ck.Indices) {
		return Checkpoint{}, fmt.Errorf("dse: checkpoint %q has %d values for %d indices", path, len(ck.RawValues), len(ck.Indices))
	}
	ck.Values = make([]float64, len(ck.RawValues))
	for i, raw := range ck.RawValues {
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			return Checkpoint{}, fmt.Errorf("dse: checkpoint %q value %d: %w", path, i, err)
		}
		ck.Values[i] = v
	}
	return ck, nil
}
