package server

import (
	"bufio"
	"context"
	"net/http"
	"sync"
	"testing"
)

// TestCheckpointConflict409 runs two concurrent sweeps naming the same
// checkpoint: exactly one must win, the other must be answered 409
// conflict — previously both ran and interleaved writes to the same
// file.
func TestCheckpointConflict409(t *testing.T) {
	dir := t.TempDir()
	_, ts := newTestServer(t, Options{
		Workers:       2,
		MaxConcurrent: 4,
		CheckpointDir: dir,
	})
	// A sim-backed sweep is slow enough that both requests overlap.
	req := SweepRequest{
		Model:           ModelSpec{App: "tmm"},
		Evaluator:       EvaluatorSpec{Kind: "sim", TotalRefs: 2000},
		Space:           SpaceSpec{Per: 2},
		Checkpoint:      "shared",
		CheckpointEvery: 4,
	}

	const racers = 2
	statuses := make([]int, racers)
	conflicts := make([]bool, racers)
	var wg sync.WaitGroup
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp := postJSON(t, &http.Client{}, ts.URL+"/v1/sweep", req)
			defer resp.Body.Close()
			statuses[i] = resp.StatusCode
			if resp.StatusCode == http.StatusConflict {
				conflicts[i] = true
				return
			}
			// Drain the NDJSON stream so the sweep runs to completion.
			sc := bufio.NewScanner(resp.Body)
			sc.Buffer(make([]byte, 1<<20), 1<<20)
			for sc.Scan() {
			}
		}(i)
	}
	wg.Wait()

	winners, losers := 0, 0
	for i := 0; i < racers; i++ {
		switch {
		case statuses[i] == http.StatusOK:
			winners++
		case conflicts[i]:
			losers++
		default:
			t.Fatalf("racer %d: status %d, want 200 or 409", i, statuses[i])
		}
	}
	if winners != 1 || losers != 1 {
		t.Fatalf("got %d winners and %d conflicts, want exactly 1 and 1", winners, losers)
	}

	// The lock releases with the request: a retry of the loser now runs
	// (resuming the winner's checkpoint).
	resp := postJSON(t, &http.Client{}, ts.URL+"/v1/sweep", SweepRequest{
		Model:      ModelSpec{App: "tmm"},
		Evaluator:  EvaluatorSpec{Kind: "sim", TotalRefs: 2000},
		Space:      SpaceSpec{Per: 2},
		Checkpoint: "shared",
		Resume:     true,
	})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("retry after conflict = %d, want 200", resp.StatusCode)
	}
}

// TestCheckpointTenantNamespacing checks equal checkpoint names from
// different tenants resolve to disjoint paths, while the anonymous
// identity keeps the legacy flat layout.
func TestCheckpointTenantNamespacing(t *testing.T) {
	dir := t.TempDir()
	s := New(Options{CheckpointDir: dir, Tenants: []TenantConfig{
		{Name: "acme", Key: "ka"},
		{Name: "bob", Key: "kb"},
	}})

	paths := map[string]string{}
	for _, name := range []string{"acme", "bob"} {
		ctx := contextWithTenant(context.Background(), s.tenants.byNameOrAnon(name))
		p, err := s.checkpointPath(ctx, "weekly")
		if err != nil {
			t.Fatalf("checkpointPath(%s): %v", name, err)
		}
		paths[name] = p
	}
	if paths["acme"] == paths["bob"] {
		t.Fatalf("two tenants share checkpoint path %q", paths["acme"])
	}
	anon, err := s.checkpointPath(context.Background(), "weekly")
	if err != nil {
		t.Fatalf("anonymous checkpointPath: %v", err)
	}
	if anon != dir+"/weekly" {
		t.Fatalf("anonymous path = %q, want the flat legacy %q", anon, dir+"/weekly")
	}
}

// TestLockCheckpoint checks the in-use map grants, refuses, and releases.
func TestLockCheckpoint(t *testing.T) {
	s := New(Options{})
	unlock, err := s.lockCheckpoint("/tmp/ck/a")
	if err != nil {
		t.Fatalf("first lock: %v", err)
	}
	if _, err := s.lockCheckpoint("/tmp/ck/a"); err == nil {
		t.Fatalf("second lock of a held path succeeded")
	} else if status, body := classify(err); status != http.StatusConflict || body.Code != CodeConflict {
		t.Fatalf("second lock classified as (%d, %s), want (409, %s)", status, body.Code, CodeConflict)
	}
	// Distinct paths are independent; empty paths need no lock.
	unlockB, err := s.lockCheckpoint("/tmp/ck/b")
	if err != nil {
		t.Fatalf("independent lock: %v", err)
	}
	unlockB()
	for i := 0; i < 3; i++ {
		noop, err := s.lockCheckpoint("")
		if err != nil {
			t.Fatalf("empty lock %d: %v", i, err)
		}
		noop()
	}
	unlock()
	if _, err := s.lockCheckpoint("/tmp/ck/a"); err != nil {
		t.Fatalf("relock after unlock: %v", err)
	}
}
