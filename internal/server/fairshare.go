package server

import (
	"context"
	"sync"
)

// fairShare is a weighted deficit-round-robin (WDRR) slot scheduler: a
// fixed pool of execution slots arbitrated across per-tenant FIFO
// queues. Each round the cursor visits every backlogged tenant, credits
// its deficit counter by its weight, and grants one slot per unit of
// deficit — so over any busy interval tenants receive slots in
// proportion to their weights, an idle tenant's share is redistributed,
// and a flooding tenant can grow only its own queue. Two instances run
// in the server: the request-admission gate (quota and shed bounds
// enforced) and the engine point gate (weights only, no shedding).
//
// The scheduler also closes the cancel-while-queued race of the old
// semaphore gate: an abandoning waiter leaves the pending count
// immediately under the lock, and when a grant races with the
// cancellation the granted slot is handed straight to the next waiter
// instead of leaking until timeout.
type fairShare struct {
	mu       sync.Mutex
	capacity int
	inUse    int
	// quota enforces per-tenant MaxConcurrent, and shed per-tenant (and
	// global) queue bounds; both are on for the admission gate and off
	// for the engine point gate.
	quota bool
	shed  bool
	// globalQueue bounds total pending waiters when shedding (the
	// server's memory bound, exactly the old admission MaxQueue);
	// defaultQueue bounds one tenant with no MaxQueue of its own.
	globalQueue  int
	defaultQueue int

	waiting int // pending (non-abandoned) waiters across all queues
	queues  map[string]*fsQueue
	ring    []*fsQueue // round-robin order over backlogged queues
	cursor  int
}

// fsQueue is one tenant's scheduling state.
type fsQueue struct {
	tenant  *tenantState
	waiters []*fsWaiter
	pending int // non-abandoned waiters
	inUse   int // slots this tenant currently holds
	deficit float64
	ringed  bool
}

// fsWaiter is one queued acquisition. granted/abandoned are written and
// read only under fairShare.mu; ready is closed exactly once, on grant.
type fsWaiter struct {
	queue     *fsQueue
	ready     chan struct{}
	granted   bool
	abandoned bool
}

// newFairShare builds a scheduler over capacity slots. With quota the
// per-tenant concurrency/queue limits apply and overflow is shed with
// errSaturated; without, waiters only ever block or follow their
// context.
func newFairShare(capacity int, quota bool, globalQueue, defaultQueue int) *fairShare {
	return &fairShare{
		capacity:     capacity,
		quota:        quota,
		shed:         quota,
		globalQueue:  globalQueue,
		defaultQueue: defaultQueue,
		queues:       make(map[string]*fsQueue),
	}
}

// setCapacity resizes the slot pool (used once at startup when the pool
// size is only known after the engine is built). Shrinking strands no
// slots: holders drain naturally and dispatch honors the new bound.
func (f *fairShare) setCapacity(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.capacity = n
	f.dispatchLocked()
}

// acquire obtains one slot for tenant t, blocking in t's queue until the
// scheduler grants it, ctx ends, or (shedding gates only) a queue bound
// overflows. On nil error the caller owns a slot and must call the
// returned release exactly once.
func (f *fairShare) acquire(ctx context.Context, t *tenantState) (func(), error) {
	return f.acquireShed(ctx, t, f.shed)
}

// acquireWait is acquire without the shed bounds: the caller waits for
// its fair turn no matter how deep the queues are. Job runners use it —
// their queue is disk-backed, so depth costs no memory, but quota and
// weighted ordering still apply.
func (f *fairShare) acquireWait(ctx context.Context, t *tenantState) (func(), error) {
	return f.acquireShed(ctx, t, false)
}

func (f *fairShare) acquireShed(ctx context.Context, t *tenantState, shed bool) (func(), error) {
	f.mu.Lock()
	q := f.queueLocked(t)
	if shed {
		// Bounds only matter when the request would actually wait: a free
		// slot under quota is granted by dispatch before anyone queues.
		wouldWait := f.inUse >= f.capacity || f.waiting > 0 || f.quotaBlockedLocked(q)
		if wouldWait && (f.waiting >= f.globalQueue || q.pending >= f.queueBoundLocked(q)) {
			f.mu.Unlock()
			return nil, errSaturated
		}
	}
	w := &fsWaiter{queue: q, ready: make(chan struct{})}
	q.waiters = append(q.waiters, w)
	q.pending++
	f.waiting++
	if !q.ringed {
		q.ringed = true
		f.ring = append(f.ring, q)
	}
	f.dispatchLocked()
	f.mu.Unlock()

	select {
	case <-w.ready:
		return func() { f.release(q) }, nil
	case <-ctx.Done():
		f.mu.Lock()
		if w.granted {
			// The grant raced with the cancellation: hand the slot straight
			// to the next waiter rather than leaking it to this dead request.
			f.inUse--
			q.inUse--
			f.dispatchLocked()
			f.mu.Unlock()
			return nil, ctx.Err()
		}
		// Leave the pending counts immediately; the queue slice entry is
		// pruned lazily by dispatch.
		w.abandoned = true
		q.pending--
		f.waiting--
		f.mu.Unlock()
		return nil, ctx.Err()
	}
}

// release returns a slot to the pool and dispatches the next waiters.
func (f *fairShare) release(q *fsQueue) {
	f.mu.Lock()
	f.inUse--
	q.inUse--
	f.dispatchLocked()
	f.mu.Unlock()
}

// inUseCount returns the number of occupied slots.
func (f *fairShare) inUseCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.inUse
}

// waitingCount returns the number of pending waiters.
func (f *fairShare) waitingCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.waiting
}

// queueLocked finds or creates t's queue.
func (f *fairShare) queueLocked(t *tenantState) *fsQueue {
	q := f.queues[t.name]
	if q == nil {
		q = &fsQueue{tenant: t}
		f.queues[t.name] = q
	}
	return q
}

// quotaBlockedLocked reports whether t's concurrency quota forbids
// another grant right now.
func (f *fairShare) quotaBlockedLocked(q *fsQueue) bool {
	if !f.quota {
		return false
	}
	max := q.tenant.config().MaxConcurrent
	return max > 0 && q.inUse >= max
}

// queueBoundLocked returns t's pending-waiter bound.
func (f *fairShare) queueBoundLocked(q *fsQueue) int {
	if max := q.tenant.config().MaxQueue; max > 0 {
		return max
	}
	return f.defaultQueue
}

// dispatchLocked runs the WDRR round: while slots are free and queues
// are backlogged, visit queues in ring order, credit each freshly
// visited queue's deficit by its weight, and grant slots while the
// deficit covers them. A queue that empties leaves the ring with its
// deficit reset (DRR's anti-hoarding rule); a quota-blocked queue is
// skipped without credit so its share is not banked while it cannot use
// it.
//
// When the pool fills mid-budget the cursor stays parked on the current
// queue (without re-crediting it on resume), so a slot released later
// continues that queue's turn — otherwise every one-slot-at-a-time
// release cycle would degenerate to unweighted round-robin, granting a
// weight-3 tenant exactly as much as a weight-1 one.
func (f *fairShare) dispatchLocked() {
	idle := 0 // consecutive ring visits that granted nothing
	for f.inUse < f.capacity && len(f.ring) > 0 && idle < len(f.ring) {
		if f.cursor >= len(f.ring) {
			f.cursor = 0
		}
		q := f.ring[f.cursor]
		f.pruneLocked(q)
		if len(q.waiters) == 0 {
			f.dropFromRingLocked()
			continue
		}
		if f.quotaBlockedLocked(q) {
			f.cursor++
			idle++
			continue
		}
		if q.deficit < 1 {
			// A fresh visit: leftover deficit ≥ 1 means the last visit was
			// cut short by pool capacity and the budget is still live.
			q.deficit += float64(fsWeight(q))
		}
		served := false
		for len(q.waiters) > 0 && q.deficit >= 1 && f.inUse < f.capacity && !f.quotaBlockedLocked(q) {
			w := q.waiters[0]
			q.waiters = q.waiters[1:]
			if w.abandoned {
				continue
			}
			q.deficit--
			q.pending--
			f.waiting--
			w.granted = true
			close(w.ready)
			f.inUse++
			q.inUse++
			served = true
		}
		f.pruneLocked(q)
		if len(q.waiters) == 0 {
			f.dropFromRingLocked()
			continue
		}
		if q.deficit >= 1 && f.inUse >= f.capacity && !f.quotaBlockedLocked(q) {
			// Parked mid-budget by capacity: keep the cursor here so the
			// next release resumes this queue's turn.
			return
		}
		f.cursor++
		if served {
			idle = 0
		} else {
			idle++
		}
	}
}

// pruneLocked drops abandoned waiters from the front of q.
func (f *fairShare) pruneLocked(q *fsQueue) {
	for len(q.waiters) > 0 && q.waiters[0].abandoned {
		q.waiters = q.waiters[1:]
	}
}

// dropFromRingLocked removes the queue under the cursor from the ring,
// resetting its deficit. The cursor then addresses the next queue.
func (f *fairShare) dropFromRingLocked() {
	q := f.ring[f.cursor]
	q.deficit = 0
	q.ringed = false
	f.ring = append(f.ring[:f.cursor], f.ring[f.cursor+1:]...)
}

// fsWeight is q's current fair-share weight (≥ 1 after config
// normalization; the anonymous identity defaults likewise).
func fsWeight(q *fsQueue) int {
	w := q.tenant.config().Weight
	if w <= 0 {
		return DefaultTenantWeight
	}
	return w
}
