package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"testing"

	"repro/internal/engine"
	"repro/internal/model"
)

// TestModelSpecWireCompatibility pins the catalog/1 ↔ catalog/2 wire
// contract: a spec without the new fields marshals byte-for-byte as the
// original catalog/1 JSON, a catalog/1 document and its explicit
// catalog/2 equivalent resolve to the same engine fingerprint, and
// unmarshal→marshal is a fixed point for both versions.
func TestModelSpecWireCompatibility(t *testing.T) {
	// 1. Marshaling: the new fields are omitempty, so a spec that does
	// not use them produces exactly the catalog/1 bytes.
	legacy := ModelSpec{App: "tmm", Overrides: map[string]float64{"fseq": 0.2}}
	got, err := json.Marshal(legacy)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"app":"tmm","overrides":{"fseq":0.2}}`
	if string(got) != want {
		t.Fatalf("catalog/1 marshaling changed:\n got %s\nwant %s", got, want)
	}

	// 2. Resolution: catalog/1 (absent fields) and catalog/2 with the
	// family spelled out build the same model — same fingerprint, so the
	// two wire versions share engine cache entries.
	c := DefaultCatalog()
	var v1Spec ModelSpec
	if err := json.Unmarshal([]byte(want), &v1Spec); err != nil {
		t.Fatal(err)
	}
	v2Spec := v1Spec
	v2Spec.Schema = CatalogSchema
	v2Spec.Family = model.FamilyC2Bound
	m1, err := c.ResolveModel(v1Spec)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := c.ResolveModel(v2Spec)
	if err != nil {
		t.Fatal(err)
	}
	if m1.Fingerprint() != m2.Fingerprint() {
		t.Fatalf("catalog/1 fingerprint %q != catalog/2 fingerprint %q", m1.Fingerprint(), m2.Fingerprint())
	}

	// 3. The evaluator fingerprints agree too — and match the original
	// pre-family evaluator, so old clients keep their warm cache.
	ev1, err := c.EvaluatorFamily(m1, EvaluatorSpec{})
	if err != nil {
		t.Fatal(err)
	}
	ev2, err := c.EvaluatorFamily(m2, EvaluatorSpec{})
	if err != nil {
		t.Fatal(err)
	}
	fp1 := ev1.(engine.Fingerprinter).Fingerprint()
	fp2 := ev2.(engine.Fingerprinter).Fingerprint()
	if fp1 != fp2 {
		t.Fatalf("evaluator fingerprints diverge: %q vs %q", fp1, fp2)
	}
	cm, err := c.Resolve(v1Spec)
	if err != nil {
		t.Fatal(err)
	}
	legacyEv, err := c.Evaluator(cm, EvaluatorSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if lfp := legacyEv.(engine.Fingerprinter).Fingerprint(); lfp != fp1 {
		t.Fatalf("family evaluator fingerprint %q != legacy evaluator fingerprint %q", fp1, lfp)
	}

	// 4. Round-trip stability: unmarshal→marshal is a fixed point for
	// both wire versions.
	for _, doc := range []string{
		want,
		`{"schema":"catalog/2","app":"fft","family":"gpu","params":{"m_fma":0.75}}`,
	} {
		var spec ModelSpec
		if err := json.Unmarshal([]byte(doc), &spec); err != nil {
			t.Fatalf("unmarshal %s: %v", doc, err)
		}
		out, err := json.Marshal(spec)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out, []byte(doc)) {
			t.Fatalf("round trip not stable:\n in  %s\n out %s", doc, out)
		}
	}
}

// TestModelSpecSchemaValidation rejects unknown schemas and family
// fields on endpoints that need the analytic C²-Bound form.
func TestModelSpecSchemaValidation(t *testing.T) {
	c := DefaultCatalog()
	if _, err := c.ResolveModel(ModelSpec{Schema: "catalog/9", App: "tmm"}); err == nil {
		t.Fatal("unknown schema accepted")
	}
	if _, err := c.ResolveModel(ModelSpec{App: "tmm", Family: "no-such-family"}); err == nil {
		t.Fatal("unknown family accepted")
	}
	if _, err := c.ResolveModel(ModelSpec{App: "tmm", Family: "gpu", Params: map[string]float64{"m_fma": 1.5}}); err == nil {
		t.Fatal("out-of-domain family parameter accepted")
	}
	if _, err := c.Resolve(ModelSpec{App: "tmm", Family: "gpu"}); err == nil {
		t.Fatal("Resolve accepted a non-c2bound family")
	}
}

// TestCatalogEndpoint checks GET /v1/catalog: current schema, the
// application names, and every registered family with documented
// parameter domains.
func TestCatalogEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, err := ts.Client().Get(ts.URL + "/v1/catalog")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	var out CatalogResponse
	decodeBody(t, resp, &out)
	if out.Schema != CatalogSchema {
		t.Fatalf("schema %q, want %q", out.Schema, CatalogSchema)
	}
	apps := map[string]bool{}
	for _, a := range out.Apps {
		apps[a] = true
	}
	if !apps["tmm"] || !apps["fft"] {
		t.Fatalf("apps %v missing catalog profiles", out.Apps)
	}
	fams := map[string]CatalogFamily{}
	for _, f := range out.Families {
		fams[f.Name] = f
	}
	for _, name := range []string{model.FamilyC2Bound, model.FamilyGPU, model.FamilyCommSync, model.FamilySqrtM} {
		if _, ok := fams[name]; !ok {
			t.Fatalf("families %v missing %q", out.Families, name)
		}
	}
	gpu := fams[model.FamilyGPU]
	params := map[string]CatalogParam{}
	for _, p := range gpu.Params {
		params[p.Name] = p
	}
	mfma, ok := params["m_fma"]
	if !ok {
		t.Fatalf("gpu family params %v missing m_fma", gpu.Params)
	}
	if float64(mfma.Lo) != 0 || float64(mfma.Hi) != 1 {
		t.Fatalf("m_fma domain [%v, %v], want [0, 1]", mfma.Lo, mfma.Hi)
	}
}

// TestEvaluateFamilyEndpoint scores single family points over HTTP:
// dimensionality is validated against the resolved family's space (not
// the c2bound 6-dim shape), and a repeat of the same request hits the
// shared cache.
func TestEvaluateFamilyEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	req := EvaluateRequest{
		Model: ModelSpec{Schema: CatalogSchema, App: "fft", Family: model.FamilyGPU},
		Point: []float64{16, 128, 0.5}, // SM, lanes, occupancy
	}
	var first, second EvaluateResponse
	resp := postJSON(t, ts.Client(), ts.URL+"/v1/evaluate", req)
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	decodeBody(t, resp, &first)
	if !first.Feasible || first.CacheHit {
		t.Fatalf("first evaluation: %+v, want feasible cold", first)
	}
	resp = postJSON(t, ts.Client(), ts.URL+"/v1/evaluate", req)
	decodeBody(t, resp, &second)
	if !second.CacheHit {
		t.Fatalf("second evaluation: %+v, want cache hit", second)
	}
	if float64(first.Value) != float64(second.Value) {
		t.Fatalf("values diverge: %v vs %v", first.Value, second.Value)
	}

	// A c2bound-shaped point is the wrong dimensionality for gpu.
	req.Point = []float64{4.725, 2.025, 4.275, 3, 16, 256}
	resp = postJSON(t, ts.Client(), ts.URL+"/v1/evaluate", req)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("6-dim point for gpu: status = %d, want 400", resp.StatusCode)
	}
}

// TestSweepFamilyEndpoint sweeps a non-C²-Bound family end to end over
// HTTP: the gpu family's declared space, batched through the shared
// engine, must stream to a finite best design.
func TestSweepFamilyEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	req := SweepRequest{
		Model:         ModelSpec{Schema: CatalogSchema, App: "fft", Family: model.FamilyGPU},
		Space:         SpaceSpec{Per: 3},
		IncludeValues: true,
	}
	resp := postJSON(t, ts.Client(), ts.URL+"/v1/sweep", req)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var result SweepResult
	seen := false
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var probe struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(sc.Bytes(), &probe); err != nil {
			t.Fatalf("frame: %v", err)
		}
		if probe.Type == "result" {
			if err := json.Unmarshal(sc.Bytes(), &result); err != nil {
				t.Fatalf("result frame: %v", err)
			}
			seen = true
		}
	}
	if !seen {
		t.Fatal("stream ended without a result frame")
	}
	if result.Error != nil {
		t.Fatalf("sweep failed: %+v", result.Error)
	}
	// gpu space is 3-dimensional; per=3 gives 27 designs.
	if got := len(result.Values); got != 27 {
		t.Fatalf("swept %d designs, want 27", got)
	}
	if result.BestValue == nil || math.IsInf(float64(*result.BestValue), 1) || float64(*result.BestValue) <= 0 {
		t.Fatalf("no finite positive best value: %v", result.BestValue)
	}
	if len(result.BestPoint) != 3 {
		t.Fatalf("best point %v, want 3 dims (sm, lanes, theta)", result.BestPoint)
	}
}

// TestAPSFamilyEndpoint runs /v1/aps for a family without an analytic
// closed form: the response degrades to a grid optimum and reports the
// swept size.
func TestAPSFamilyEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	req := APSRequest{
		Model: ModelSpec{Schema: CatalogSchema, App: "tmm", Family: model.FamilyCommSync},
		Space: SpaceSpec{Per: 4},
	}
	resp := postJSON(t, ts.Client(), ts.URL+"/v1/aps", req)
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var out APSResponse
	decodeBody(t, resp, &out)
	if out.Analytic.Method != "grid" {
		t.Fatalf("method %q, want grid (no closed form for commsync)", out.Analytic.Method)
	}
	// commsync space is 2-dimensional; per=4 gives 16 designs.
	if out.SpaceSize != 16 {
		t.Fatalf("space size %d, want 16", out.SpaceSize)
	}
	if out.BestValue == nil || math.IsInf(float64(*out.BestValue), 1) {
		t.Fatalf("no finite best: %+v", out)
	}
	if len(out.BestPoint) != 2 {
		t.Fatalf("best point %v, want 2 dims (a0, n)", out.BestPoint)
	}

	// The simulator cannot score non-chip designs: evaluator kind "sim"
	// must be rejected, not silently mis-scored.
	req.Evaluator = EvaluatorSpec{Kind: "sim"}
	resp = postJSON(t, ts.Client(), ts.URL+"/v1/aps", req)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("sim evaluator for commsync: status = %d, want 400 (body %s)", resp.StatusCode, body)
	}
}
