package server

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// testTenant builds a standalone tenant state for scheduler tests (nil
// registry: instruments are no-ops).
func testTenant(t *testing.T, cfg TenantConfig) *tenantState {
	t.Helper()
	n, err := cfg.normalize()
	if err != nil {
		t.Fatalf("normalize %+v: %v", cfg, err)
	}
	return newTenantState(n, nil)
}

func TestAdmissionSlotsAndQueue(t *testing.T) {
	a := newFairShare(2, true, 1, 1)
	ten := testTenant(t, TenantConfig{Name: AnonymousTenant})
	ctx := context.Background()

	rel1, err := a.acquire(ctx, ten)
	if err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	if _, err := a.acquire(ctx, ten); err != nil {
		t.Fatalf("second acquire: %v", err)
	}
	if a.inUseCount() != 2 {
		t.Fatalf("inUse = %d, want 2", a.inUseCount())
	}

	// Third caller queues; it must unblock when a slot frees.
	got := make(chan error, 1)
	go func() {
		_, err := a.acquire(ctx, ten)
		got <- err
	}()
	deadline := time.Now().Add(2 * time.Second)
	for a.waitingCount() != 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if a.waitingCount() != 1 {
		t.Fatalf("waiting = %d, want 1", a.waitingCount())
	}

	// Fourth caller overflows the queue and is shed synchronously.
	if _, err := a.acquire(ctx, ten); !errors.Is(err, errSaturated) {
		t.Fatalf("overflow acquire = %v, want errSaturated", err)
	}

	rel1()
	if err := <-got; err != nil {
		t.Fatalf("queued acquire: %v", err)
	}
	if a.inUseCount() != 2 || a.waitingCount() != 0 {
		t.Fatalf("after handoff: inUse=%d waiting=%d, want 2/0", a.inUseCount(), a.waitingCount())
	}
}

func TestAdmissionQueuedCancel(t *testing.T) {
	a := newFairShare(1, true, 4, 4)
	ten := testTenant(t, TenantConfig{Name: AnonymousTenant})
	if _, err := a.acquire(context.Background(), ten); err != nil {
		t.Fatalf("acquire: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	got := make(chan error, 1)
	go func() {
		_, err := a.acquire(ctx, ten)
		got <- err
	}()
	deadline := time.Now().Add(2 * time.Second)
	for a.waitingCount() != 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-got; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled acquire = %v, want context.Canceled", err)
	}
	// The fixed accounting: an abandoned waiter leaves the queued count
	// the moment its acquire returns, not when a slot would have reached
	// it.
	if a.waitingCount() != 0 {
		t.Fatalf("waiting = %d after cancel, want 0", a.waitingCount())
	}
}

func TestRetryAfterSeconds(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 1},
		{-time.Second, 1},
		{100 * time.Millisecond, 1},
		{time.Second, 1},
		{1500 * time.Millisecond, 2},
		{3 * time.Second, 3},
	}
	for _, tc := range cases {
		if got := retryAfterSeconds(tc.d); got != tc.want {
			t.Fatalf("retryAfterSeconds(%v) = %d, want %d", tc.d, got, tc.want)
		}
	}
}

func TestJSONFloatRoundTrip(t *testing.T) {
	cases := []struct {
		v    float64
		wire string
	}{
		{1.5, "1.5"},
		{0, "0"},
		{math.Inf(1), `"+Inf"`},
		{math.Inf(-1), `"-Inf"`},
	}
	for _, tc := range cases {
		data, err := json.Marshal(jsonFloat(tc.v))
		if err != nil {
			t.Fatalf("marshal %v: %v", tc.v, err)
		}
		if string(data) != tc.wire {
			t.Fatalf("marshal %v = %s, want %s", tc.v, data, tc.wire)
		}
		var back jsonFloat
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", data, err)
		}
		if float64(back) != tc.v {
			t.Fatalf("round trip %v -> %v", tc.v, back)
		}
	}

	// NaN cannot compare equal; check it survives structurally.
	data, err := json.Marshal(jsonFloat(math.NaN()))
	if err != nil {
		t.Fatalf("marshal NaN: %v", err)
	}
	if string(data) != `"NaN"` {
		t.Fatalf("marshal NaN = %s", data)
	}
	var back jsonFloat
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal NaN: %v", err)
	}
	if !math.IsNaN(float64(back)) {
		t.Fatalf("NaN round trip lost NaN-ness: %v", back)
	}
}

func TestOrderedEmitterResequences(t *testing.T) {
	rec := httptest.NewRecorder()
	out := newNDJSONWriter(rec)
	o := newOrderedEmitter(out)

	type frame struct {
		I int `json:"i"`
	}
	for _, i := range []int{2, 0, 3, 1, 4} {
		o.Add(i, frame{I: i})
	}
	lines := strings.Fields(strings.TrimSpace(rec.Body.String()))
	if len(lines) != 5 {
		t.Fatalf("emitted %d lines, want 5", len(lines))
	}
	for i, line := range lines {
		var f frame
		if err := json.Unmarshal([]byte(line), &f); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if f.I != i {
			t.Fatalf("line %d carries index %d; submission order violated", i, f.I)
		}
	}
}
