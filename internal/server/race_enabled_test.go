//go:build race

package server

// raceDetector reports that this test binary runs under -race, whose
// instrumentation slows evaluation enough to void wall-clock latency
// assertions.
const raceDetector = true
