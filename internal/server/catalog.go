package server

import (
	"math"
	"sort"

	"repro/internal/chip"
	"repro/internal/core"
	"repro/internal/dse"
	"repro/internal/model"
)

// CatalogSchema is the current wire schema of model specs. Version 2
// adds the "family" selector and family parameters; specs without a
// schema field parse as version 1, whose fields and meaning are
// unchanged (family defaults to c2bound), so existing catalog JSON and
// clients keep working byte-for-byte.
const CatalogSchema = "catalog/2"

// ModelSpec selects a catalog application and optionally overrides
// individual application or chip parameters. A request is pure data —
// the server owns the model constructors — so the engine's
// fingerprint-keyed memo cache is shared across every client asking for
// the same effective model.
type ModelSpec struct {
	// Schema versions the spec ("catalog/2"). Empty means the original
	// catalog/1 wire format, which is a strict subset.
	Schema string `json:"schema,omitempty"`
	// App names a catalog profile: tmm, stencil, fft or fluidanimate.
	App string `json:"app"`
	// Family names the model family (catalog/2). Empty defaults to
	// "c2bound", the paper's objective, preserving catalog/1 semantics.
	Family string `json:"family,omitempty"`
	// Params carries family-specific parameters by key (catalog/2), for
	// example the gpu family's m_fma. Each key is validated against the
	// family's documented domain by the model registry.
	Params map[string]float64 `json:"params,omitempty"`
	// Overrides replaces application parameters by key (fseq, fmem,
	// overlap, ch, cm, pmr_ratio, pamp_ratio, ic0). Each key is validated
	// against the same domain App.Validate (and the paramdomain analyzer)
	// enforces before the model is built.
	Overrides map[string]float64 `json:"overrides,omitempty"`
	// Chip overrides chip parameters by key (total_area, fixed_area,
	// l1_density_kb, l2_density_kb, l1_hit_cycles, l2_hit_cycles,
	// mem_latency, mem_bandwidth, queue_sensitivity, pollack_k0,
	// pollack_phi0).
	Chip map[string]float64 `json:"chip,omitempty"`
}

// SpaceSpec describes the design space of a sweep or APS request: either
// a subsampled paper space (Per values per dimension) or an explicit
// parameter grid.
type SpaceSpec struct {
	// Per subsamples the paper's six-dimension space to this many values
	// per dimension (1..10); see dse.ReducedSpace.
	Per int `json:"per,omitempty"`
	// Params is an explicit grid; mutually exclusive with Per.
	Params []ParamSpec `json:"params,omitempty"`
}

// ParamSpec is one explicit grid dimension.
type ParamSpec struct {
	Name   string    `json:"name"`
	Values []float64 `json:"values"`
}

// EvaluatorSpec selects how design points are scored: the analytic
// C²-Bound model ("model", the default — microseconds per point) or the
// cycle-level simulator ("sim" — the expensive ground truth).
type EvaluatorSpec struct {
	Kind string `json:"kind,omitempty"`
	// Simulator parameters (kind "sim" only). Zero values select the
	// repository defaults.
	Workload  string  `json:"workload,omitempty"`
	WSBytes   uint64  `json:"ws_bytes,omitempty"`
	MeanGap   float64 `json:"mean_gap,omitempty"`
	TotalRefs int     `json:"total_refs,omitempty"`
	Seed      uint64  `json:"seed,omitempty"`
}

// paramDomain is one validated override range, inclusive on both ends.
// The table mirrors the domains App.Validate rejects and the paramdomain
// analyzer enforces statically for in-repo constants; requests are
// runtime data, so the same contract is applied here.
type paramDomain struct {
	lo, hi float64
	apply  func(*core.App, float64)
}

// appDomains maps override keys to their domain and setter.
var appDomains = map[string]paramDomain{
	"fseq":       {0, 1, func(a *core.App, v float64) { a.Fseq = v }},
	"fmem":       {0, 1, func(a *core.App, v float64) { a.Fmem = v }},
	"overlap":    {0, 1, func(a *core.App, v float64) { a.Overlap = v }},
	"ch":         {1, math.MaxFloat64, func(a *core.App, v float64) { a.CH = v }},
	"cm":         {1, math.MaxFloat64, func(a *core.App, v float64) { a.CM = v }},
	"pmr_ratio":  {0, 1, func(a *core.App, v float64) { a.PMRRatio = v }},
	"pamp_ratio": {0, math.MaxFloat64, func(a *core.App, v float64) { a.PAMPRatio = v }},
	"ic0":        {math.SmallestNonzeroFloat64, math.MaxFloat64, func(a *core.App, v float64) { a.IC0 = v }},
}

// chipDomain is one chip override range and setter.
type chipDomain struct {
	lo, hi float64
	apply  func(*chip.Config, float64)
}

// chipDomains maps chip override keys to their domain and setter. Every
// quantity is a positive physical parameter.
var chipDomains = map[string]chipDomain{
	"total_area":        {1e-6, math.MaxFloat64, func(c *chip.Config, v float64) { c.TotalArea = v }},
	"fixed_area":        {0, math.MaxFloat64, func(c *chip.Config, v float64) { c.FixedArea = v }},
	"l1_density_kb":     {1e-6, math.MaxFloat64, func(c *chip.Config, v float64) { c.L1DensityKB = v }},
	"l2_density_kb":     {1e-6, math.MaxFloat64, func(c *chip.Config, v float64) { c.L2DensityKB = v }},
	"l1_hit_cycles":     {0, math.MaxFloat64, func(c *chip.Config, v float64) { c.L1HitCycles = v }},
	"l2_hit_cycles":     {0, math.MaxFloat64, func(c *chip.Config, v float64) { c.L2HitCycles = v }},
	"mem_latency":       {0, math.MaxFloat64, func(c *chip.Config, v float64) { c.MemLatency = v }},
	"mem_bandwidth":     {1e-6, math.MaxFloat64, func(c *chip.Config, v float64) { c.MemBandwidth = v }},
	"queue_sensitivity": {0, math.MaxFloat64, func(c *chip.Config, v float64) { c.QueueSensitivity = v }},
	"pollack_k0":        {0, math.MaxFloat64, func(c *chip.Config, v float64) { c.Pollack.K0 = v }},
	"pollack_phi0":      {0, math.MaxFloat64, func(c *chip.Config, v float64) { c.Pollack.Phi0 = v }},
}

// Catalog is the server-side registry of named models: every request
// references an application by name instead of shipping model code, so
// two clients asking for the same configuration hash to the same engine
// fingerprint and share memoized evaluations.
type Catalog struct {
	chip chip.Config
	apps map[string]func() core.App
}

// DefaultCatalog returns the catalog of the paper's case-study profiles
// over the default chip.
func DefaultCatalog() *Catalog {
	return &Catalog{
		chip: chip.DefaultConfig(),
		apps: map[string]func() core.App{
			"tmm":          core.TMMApp,
			"stencil":      core.StencilApp,
			"fft":          core.FFTApp,
			"fluidanimate": core.FluidanimateApp,
		},
	}
}

// Names lists the registered applications, sorted.
func (c *Catalog) Names() []string {
	names := make([]string, 0, len(c.apps))
	//lint:allow detguard key collection feeds the sort below; the returned slice is order-independent of the iteration
	for name := range c.apps {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// resolveAppChip assembles the overridden application profile and chip
// configuration a spec describes, validating every override against its
// documented domain.
func (c *Catalog) resolveAppChip(spec ModelSpec) (core.App, chip.Config, error) {
	mk, ok := c.apps[spec.App]
	if !ok {
		return core.App{}, chip.Config{}, notFoundf("server: unknown application %q (have %v)", spec.App, c.Names())
	}
	app := mk()
	//lint:allow detguard each override targets its own profile field, so application order cannot change the assembled model
	for key, v := range spec.Overrides {
		d, ok := appDomains[key]
		if !ok {
			return core.App{}, chip.Config{}, validationf("server: unknown override %q", key)
		}
		if math.IsNaN(v) || v < d.lo || v > d.hi {
			return core.App{}, chip.Config{}, validationf("server: override %s=%v outside [%g, %g]", key, v, d.lo, d.hi)
		}
		d.apply(&app, v)
	}
	cfg := c.chip
	//lint:allow detguard each override targets its own chip field, so application order cannot change the assembled config
	for key, v := range spec.Chip {
		d, ok := chipDomains[key]
		if !ok {
			return core.App{}, chip.Config{}, validationf("server: unknown chip override %q", key)
		}
		if math.IsNaN(v) || v < d.lo || v > d.hi {
			return core.App{}, chip.Config{}, validationf("server: chip override %s=%v outside [%g, %g]", key, v, d.lo, d.hi)
		}
		d.apply(&cfg, v)
	}
	return app, cfg, nil
}

// checkSchema validates the spec's wire versioning: catalog/1 (the
// empty string) has no family fields; catalog/2 adds them.
func checkSchema(spec ModelSpec) error {
	switch spec.Schema {
	case "", "catalog/1", CatalogSchema:
	default:
		return validationf("server: unknown schema %q (want %q)", spec.Schema, CatalogSchema)
	}
	return nil
}

// Resolve builds the C²-Bound model a spec describes, validating every
// override against its documented domain and the assembled profile
// against App.Validate. It serves the c2bound-only call sites (the KKT
// optimizer, the simulator evaluator); family-generic paths go through
// ResolveModel.
func (c *Catalog) Resolve(spec ModelSpec) (core.Model, error) {
	if err := checkSchema(spec); err != nil {
		return core.Model{}, err
	}
	if spec.Family != "" && spec.Family != model.FamilyC2Bound {
		return core.Model{}, validationf("server: family %q has no analytic C²-Bound form; this endpoint needs family %q", spec.Family, model.FamilyC2Bound)
	}
	app, cfg, err := c.resolveAppChip(spec)
	if err != nil {
		return core.Model{}, err
	}
	m := core.Model{Chip: cfg, App: app}
	if err := m.App.Validate(); err != nil {
		return core.Model{}, err
	}
	return m, nil
}

// FamilyName returns the effective family of a spec: the "family" field
// when present, c2bound otherwise (catalog/1 compatibility).
func FamilyName(spec ModelSpec) string {
	if spec.Family == "" {
		return model.FamilyC2Bound
	}
	return spec.Family
}

// ResolveModel builds the model-family instance a spec describes:
// application and chip overrides resolve exactly as Resolve, then the
// named family is constructed through the model registry, which
// validates the family parameters against their documented domains.
// Absent family fields default to c2bound, so a catalog/1 spec resolves
// to the same model (and the same engine fingerprint) as before.
func (c *Catalog) ResolveModel(spec ModelSpec) (model.Model, error) {
	if err := checkSchema(spec); err != nil {
		return nil, err
	}
	app, cfg, err := c.resolveAppChip(spec)
	if err != nil {
		return nil, err
	}
	m, err := model.New(FamilyName(spec), model.Config{Chip: cfg, App: app, Params: spec.Params})
	if err != nil {
		return nil, validationf("server: %v", err)
	}
	return m, nil
}

// Families lists the registered model families, sorted.
func (c *Catalog) Families() []string { return model.Names() }

// Space builds the design space a spec describes for the given model.
func (c *Catalog) Space(m core.Model, spec SpaceSpec) (dse.Space, error) {
	switch {
	case spec.Per > 0 && len(spec.Params) > 0:
		return dse.Space{}, validationf("server: space spec carries both per and params; pick one")
	case spec.Per > 0:
		s, err := dse.ReducedSpace(m.Chip, spec.Per)
		if err != nil {
			return dse.Space{}, validationf("server: %v", err)
		}
		return s, nil
	case len(spec.Params) > 0:
		params := make([]dse.Param, len(spec.Params))
		for i, p := range spec.Params {
			params[i] = dse.Param{Name: p.Name, Values: p.Values}
		}
		s, err := dse.NewSpace(params...)
		if err != nil {
			return dse.Space{}, validationf("server: %v", err)
		}
		return s, nil
	default:
		return dse.Space{}, validationf("server: space spec needs per or params")
	}
}

// Evaluator builds the scoring evaluator a spec describes for the model.
func (c *Catalog) Evaluator(m core.Model, spec EvaluatorSpec) (dse.CtxEvaluator, error) {
	switch spec.Kind {
	case "", "model":
		return &dse.ModelEvaluator{Model: m}, nil
	case "sim":
		workload := spec.Workload
		if workload == "" {
			workload = "fluidanimate"
		}
		ws := spec.WSBytes
		if ws == 0 {
			ws = 1 << 22
		}
		gap := spec.MeanGap
		if gap <= 0 {
			gap = 2
		}
		refs := spec.TotalRefs
		if refs == 0 {
			refs = 20000
		}
		seed := spec.Seed
		if seed == 0 {
			seed = 17
		}
		ev, err := dse.NewSimEvaluator(m.Chip, workload, ws, gap, refs, seed)
		if err != nil {
			return nil, validationf("server: %v", err)
		}
		return ev, nil
	default:
		return nil, validationf("server: unknown evaluator kind %q (want model or sim)", spec.Kind)
	}
}

// SpaceFamily builds the design space a spec describes for a
// family-generic model: Per subsamples the family's declared grids,
// Params is an explicit grid, and an empty spec takes the family's full
// default grids. For the c2bound family Per produces exactly
// dse.ReducedSpace, so catalog/1 requests sweep identical designs.
func (c *Catalog) SpaceFamily(m model.Model, spec SpaceSpec) (dse.Space, error) {
	switch {
	case spec.Per > 0 && len(spec.Params) > 0:
		return dse.Space{}, validationf("server: space spec carries both per and params; pick one")
	case len(spec.Params) > 0:
		params := make([]dse.Param, len(spec.Params))
		for i, p := range spec.Params {
			params[i] = dse.Param{Name: p.Name, Values: p.Values}
		}
		s, err := dse.NewSpace(params...)
		if err != nil {
			return dse.Space{}, validationf("server: %v", err)
		}
		return s, nil
	default:
		s, err := dse.SpaceFor(m, spec.Per)
		if err != nil {
			return dse.Space{}, validationf("server: %v", err)
		}
		return s, nil
	}
}

// EvaluatorFamily builds the scoring evaluator for a family-generic
// model. The c2bound family keeps returning the original
// dse.ModelEvaluator — same fingerprint, so old and new clients share
// memo entries — and is the only family the simulator can score (its
// points are chip designs; other families' points are not).
func (c *Catalog) EvaluatorFamily(m model.Model, spec EvaluatorSpec) (dse.CtxEvaluator, error) {
	if cb, ok := m.(*model.C2Bound); ok {
		return c.Evaluator(cb.CoreModel(), spec)
	}
	switch spec.Kind {
	case "", "model":
		return dse.NewFamilyEvaluator(m), nil
	case "sim":
		return nil, validationf("server: evaluator kind \"sim\" needs the %s family (simulator points are chip designs)", model.FamilyC2Bound)
	default:
		return nil, validationf("server: unknown evaluator kind %q (want model or sim)", spec.Kind)
	}
}
