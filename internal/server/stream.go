package server

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strconv"
)

// jsonFloat is a float64 that survives JSON encoding for the full IEEE
// range: finite values render as plain numbers, while NaN and ±Inf —
// legitimate evaluation results (an infeasible configuration scores
// +Inf) that encoding/json rejects — render as quoted strings in
// strconv's shortest round-trip format, mirroring the checkpoint file
// convention of internal/dse.
type jsonFloat float64

// MarshalJSON implements json.Marshaler.
func (f jsonFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return strconv.AppendQuote(nil, strconv.FormatFloat(v, 'g', -1, 64)), nil
	}
	return strconv.AppendFloat(nil, v, 'g', -1, 64), nil
}

// UnmarshalJSON implements json.Unmarshaler, accepting both encodings.
func (f *jsonFloat) UnmarshalJSON(data []byte) error {
	s := string(data)
	if len(s) >= 2 && s[0] == '"' {
		unquoted, err := strconv.Unquote(s)
		if err != nil {
			return fmt.Errorf("server: float string %s: %w", s, err)
		}
		s = unquoted
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return fmt.Errorf("server: float %s: %w", s, err)
	}
	*f = jsonFloat(v)
	return nil
}

// jsonFloats converts a slice for response payloads.
func jsonFloats(vs []float64) []jsonFloat {
	out := make([]jsonFloat, len(vs))
	for i, v := range vs {
		out[i] = jsonFloat(v)
	}
	return out
}

// ndjsonWriter emits newline-delimited JSON frames, flushing after every
// frame so clients observe streamed results and progress as they happen
// rather than at response end.
type ndjsonWriter struct {
	w     http.ResponseWriter
	flush http.Flusher // nil when the ResponseWriter cannot flush
	enc   *json.Encoder
	err   error
}

// newNDJSONWriter prepares the response for streaming: the NDJSON
// content type and an immediate header write, so admission and
// validation failures must be rendered before this call.
func newNDJSONWriter(w http.ResponseWriter) *ndjsonWriter {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Content-Type-Options", "nosniff")
	w.WriteHeader(http.StatusOK)
	flush, _ := w.(http.Flusher)
	return &ndjsonWriter{w: w, flush: flush, enc: json.NewEncoder(w)}
}

// Emit writes one frame. After the first failed write (client gone) all
// further frames are dropped; Err reports the sticky failure.
func (n *ndjsonWriter) Emit(frame interface{}) {
	if n.err != nil {
		return
	}
	if err := n.enc.Encode(frame); err != nil {
		n.err = err
		return
	}
	if n.flush != nil {
		n.flush.Flush()
	}
}

// Err returns the first write failure, or nil.
func (n *ndjsonWriter) Err() error { return n.err }

// orderedEmitter re-sequences frames produced in completion order into
// submission order: Add buffers out-of-order frames and emits every
// contiguous run starting at the next expected index.
type orderedEmitter struct {
	out     *ndjsonWriter
	next    int
	pending map[int]interface{}
}

func newOrderedEmitter(out *ndjsonWriter) *orderedEmitter {
	return &orderedEmitter{out: out, pending: make(map[int]interface{})}
}

// Add accepts the frame for submission index i and flushes the longest
// now-contiguous prefix.
func (o *orderedEmitter) Add(i int, frame interface{}) {
	o.pending[i] = frame
	for {
		f, ok := o.pending[o.next]
		if !ok {
			return
		}
		delete(o.pending, o.next)
		o.next++
		o.out.Emit(f)
	}
}
