package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/chip"
	"repro/internal/dse"
	"repro/internal/engine"
)

// newTestServer builds a Server with test-friendly knobs.
func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s := New(opts)
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		// Drain before the TempDir cleanups run: async job runners may
		// still be writing records into a test-owned JobDir.
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s, ts
}

// postJSON marshals body and POSTs it with the given client.
func postJSON(t *testing.T, client *http.Client, url string, body interface{}) *http.Response {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	return resp
}

// decodeBody decodes a JSON response body into v and closes it.
func decodeBody(t *testing.T, resp *http.Response, v interface{}) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
}

// testPoints returns k distinct valid points of the reduced paper space.
func testPoints(t *testing.T, k int) [][]float64 {
	t.Helper()
	space, err := dse.ReducedSpace(chip.DefaultConfig(), 3)
	if err != nil {
		t.Fatalf("space: %v", err)
	}
	if k > space.Size() {
		t.Fatalf("want %d points, space has %d", k, space.Size())
	}
	pts := make([][]float64, k)
	for i := range pts {
		pts[i] = space.Point(i)
	}
	return pts
}

func TestEvaluateEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	pt := testPoints(t, 1)[0]

	resp := postJSON(t, ts.Client(), ts.URL+"/v1/evaluate", EvaluateRequest{
		Model: ModelSpec{App: "tmm"},
		Point: pt,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	var out EvaluateResponse
	decodeBody(t, resp, &out)
	if !out.Feasible || float64(out.Value) <= 0 {
		t.Fatalf("got value=%v feasible=%v, want a positive finite score", out.Value, out.Feasible)
	}
	if out.CacheHit {
		t.Fatalf("first evaluation reported a cache hit")
	}

	// The same point again is a cache hit, even from a different client.
	resp = postJSON(t, &http.Client{}, ts.URL+"/v1/evaluate", EvaluateRequest{
		Model: ModelSpec{App: "tmm"},
		Point: pt,
	})
	var again EvaluateResponse
	decodeBody(t, resp, &again)
	if !again.CacheHit {
		t.Fatalf("repeat evaluation missed the cache")
	}
	if float64(again.Value) != float64(out.Value) {
		t.Fatalf("cached value %v != computed value %v", again.Value, out.Value)
	}
}

func TestEvaluateOverridesChangeTheResult(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	pt := testPoints(t, 1)[0]

	var base, heavier EvaluateResponse
	decodeBody(t, postJSON(t, ts.Client(), ts.URL+"/v1/evaluate", EvaluateRequest{
		Model: ModelSpec{App: "tmm"},
		Point: pt,
	}), &base)
	decodeBody(t, postJSON(t, ts.Client(), ts.URL+"/v1/evaluate", EvaluateRequest{
		Model: ModelSpec{App: "tmm", Overrides: map[string]float64{"fseq": 0.9}},
		Point: pt,
	}), &heavier)
	if heavier.CacheHit {
		t.Fatalf("override produced the base model's cache key")
	}
	if float64(heavier.Value) == float64(base.Value) {
		t.Fatalf("fseq override did not change the score (%v)", base.Value)
	}
}

// TestBatchCacheSharedAcrossClients is the tentpole acceptance check: two
// distinct HTTP clients batching the same points meet in the shared
// engine cache, so the second batch is served without re-evaluation.
func TestBatchCacheSharedAcrossClients(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	points := testPoints(t, 12)
	req := BatchRequest{Model: ModelSpec{App: "fluidanimate"}, Points: points}

	runBatch := func(client *http.Client) ([]BatchResult, BatchSummary) {
		resp := postJSON(t, client, ts.URL+"/v1/evaluate:batch", req)
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d, want 200", resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
			t.Fatalf("Content-Type = %q, want application/x-ndjson", ct)
		}
		var results []BatchResult
		var summary BatchSummary
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			line := sc.Bytes()
			if bytes.Contains(line, []byte(`"done"`)) {
				if err := json.Unmarshal(line, &summary); err != nil {
					t.Fatalf("summary line: %v", err)
				}
				continue
			}
			var r BatchResult
			if err := json.Unmarshal(line, &r); err != nil {
				t.Fatalf("result line: %v", err)
			}
			results = append(results, r)
		}
		if err := sc.Err(); err != nil {
			t.Fatalf("reading stream: %v", err)
		}
		return results, summary
	}

	// Client A: cold batch.
	coldResults, coldSummary := runBatch(ts.Client())
	if len(coldResults) != len(points) {
		t.Fatalf("cold batch returned %d results, want %d", len(coldResults), len(points))
	}
	for i, r := range coldResults {
		if r.Index != i {
			t.Fatalf("results out of submission order: line %d has index %d", i, r.Index)
		}
		if r.Error != nil {
			t.Fatalf("point %d failed: %+v", i, r.Error)
		}
	}
	if coldSummary.Engine.Evaluations == 0 {
		t.Fatalf("cold batch reported zero engine evaluations")
	}

	// Client B: a separate http.Client (fresh connections), same points.
	warmResults, warmSummary := runBatch(&http.Client{})
	if len(warmResults) != len(points) {
		t.Fatalf("warm batch returned %d results, want %d", len(warmResults), len(points))
	}
	for i, r := range warmResults {
		if !r.CacheHit {
			t.Fatalf("warm point %d was not a cache hit", i)
		}
		if float64(*r.Value) != float64(*coldResults[i].Value) {
			t.Fatalf("warm value %v != cold value %v at %d", *r.Value, *coldResults[i].Value, i)
		}
	}
	if warmSummary.CacheHits != len(points) {
		t.Fatalf("warm summary counts %d cache hits, want %d", warmSummary.CacheHits, len(points))
	}
	if warmSummary.Engine.Evaluations != 0 {
		t.Fatalf("warm batch re-evaluated %d points", warmSummary.Engine.Evaluations)
	}
	if got := s.Engine().Stats().CacheHits; got < uint64(len(points)) {
		t.Fatalf("engine recorded %d cache hits, want ≥ %d", got, len(points))
	}
}

func TestErrorEnvelopes(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	pt := testPoints(t, 1)[0]

	cases := []struct {
		name   string
		url    string
		body   interface{}
		status int
		code   string
	}{
		{"unknown app", "/v1/evaluate", EvaluateRequest{Model: ModelSpec{App: "nope"}, Point: pt},
			http.StatusNotFound, CodeNotFound},
		{"override out of domain", "/v1/evaluate",
			EvaluateRequest{Model: ModelSpec{App: "tmm", Overrides: map[string]float64{"fseq": 1.5}}, Point: pt},
			http.StatusBadRequest, CodeValidation},
		{"unknown override", "/v1/evaluate",
			EvaluateRequest{Model: ModelSpec{App: "tmm", Overrides: map[string]float64{"bogus": 1}}, Point: pt},
			http.StatusBadRequest, CodeValidation},
		{"wrong point dims", "/v1/evaluate",
			EvaluateRequest{Model: ModelSpec{App: "tmm"}, Point: []float64{1, 2}},
			http.StatusBadRequest, CodeValidation},
		{"empty batch", "/v1/evaluate:batch",
			BatchRequest{Model: ModelSpec{App: "tmm"}},
			http.StatusBadRequest, CodeValidation},
		{"space needs per or params", "/v1/sweep",
			SweepRequest{Model: ModelSpec{App: "tmm"}},
			http.StatusBadRequest, CodeValidation},
		{"unknown metric", "/v1/aps",
			APSRequest{Model: ModelSpec{App: "tmm"}, Space: SpaceSpec{Per: 2}, Metric: "speed"},
			http.StatusBadRequest, CodeValidation},
		{"checkpoint without dir", "/v1/sweep",
			SweepRequest{Model: ModelSpec{App: "tmm"}, Space: SpaceSpec{Per: 1}, Checkpoint: "ck.json"},
			http.StatusBadRequest, CodeValidation},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := postJSON(t, ts.Client(), ts.URL+tc.url, tc.body)
			if resp.StatusCode != tc.status {
				t.Fatalf("status = %d, want %d", resp.StatusCode, tc.status)
			}
			var env struct {
				Error ErrorBody `json:"error"`
			}
			decodeBody(t, resp, &env)
			if env.Error.Code != tc.code {
				t.Fatalf("code = %q, want %q", env.Error.Code, tc.code)
			}
			if env.Error.Message == "" {
				t.Fatalf("error envelope carries no message")
			}
		})
	}

	t.Run("malformed JSON", func(t *testing.T) {
		resp, err := ts.Client().Post(ts.URL+"/v1/evaluate", "application/json", strings.NewReader("{nope"))
		if err != nil {
			t.Fatalf("POST: %v", err)
		}
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status = %d, want 400", resp.StatusCode)
		}
		var env struct {
			Error ErrorBody `json:"error"`
		}
		decodeBody(t, resp, &env)
		if env.Error.Code != CodeValidation {
			t.Fatalf("code = %q, want %q", env.Error.Code, CodeValidation)
		}
	})

	t.Run("bad timeout_ms", func(t *testing.T) {
		resp := postJSON(t, ts.Client(), ts.URL+"/v1/evaluate?timeout_ms=potato",
			EvaluateRequest{Model: ModelSpec{App: "tmm"}, Point: pt})
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status = %d, want 400", resp.StatusCode)
		}
		var env struct {
			Error ErrorBody `json:"error"`
		}
		decodeBody(t, resp, &env)
		if env.Error.Code != CodeBadRequest {
			t.Fatalf("code = %q, want %q", env.Error.Code, CodeBadRequest)
		}
	})
}

// slowSweepRequest returns a sweep request big enough to stay in flight
// until the test cancels it (a simulated sweep over 729 points).
func slowSweepRequest(checkpoint string) SweepRequest {
	return SweepRequest{
		Model:           ModelSpec{App: "fluidanimate"},
		Evaluator:       EvaluatorSpec{Kind: "sim", TotalRefs: 50000},
		Space:           SpaceSpec{Per: 3},
		Checkpoint:      checkpoint,
		CheckpointEvery: 1,
		ProgressMS:      50,
	}
}

// startSweep POSTs a sweep on a cancellable context and returns a channel
// carrying the raw NDJSON body once the response ends.
func startSweep(t *testing.T, ctx context.Context, url string, req SweepRequest) <-chan []byte {
	t.Helper()
	data, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, url+"/v1/sweep", bytes.NewReader(data))
	if err != nil {
		t.Fatalf("request: %v", err)
	}
	httpReq.Header.Set("Content-Type", "application/json")
	out := make(chan []byte, 1)
	go func() {
		defer close(out)
		resp, err := http.DefaultClient.Do(httpReq)
		if err != nil {
			out <- nil
			return
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		out <- body
	}()
	return out
}

// waitFor polls cond for up to 5 seconds.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestAdmissionShedsWith429 saturates a MaxConcurrent=1, MaxQueue=1
// server and checks the third request is shed with 429 + Retry-After.
func TestAdmissionShedsWith429(t *testing.T) {
	s, ts := newTestServer(t, Options{
		MaxConcurrent: 1,
		MaxQueue:      1,
		RetryAfter:    3 * time.Second,
	})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Request 1 occupies the only slot; request 2 occupies the queue.
	body1 := startSweep(t, ctx, ts.URL, slowSweepRequest(""))
	waitFor(t, "slot occupied", func() bool { return s.Stats().InFlight == 1 })
	body2 := startSweep(t, ctx, ts.URL, slowSweepRequest(""))
	waitFor(t, "queue occupied", func() bool { return s.Stats().Queued == 1 })

	// Request 3 must be shed immediately.
	resp := postJSON(t, ts.Client(), ts.URL+"/v1/evaluate", EvaluateRequest{
		Model: ModelSpec{App: "tmm"},
		Point: testPoints(t, 1)[0],
	})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "3" {
		t.Fatalf("Retry-After = %q, want %q", ra, "3")
	}
	var env struct {
		Error ErrorBody `json:"error"`
	}
	decodeBody(t, resp, &env)
	if env.Error.Code != CodeOverloaded {
		t.Fatalf("code = %q, want %q", env.Error.Code, CodeOverloaded)
	}
	if st := s.Stats(); st.Shed != 1 {
		t.Fatalf("stats count %d shed requests, want 1", st.Shed)
	}

	cancel()
	<-body1
	<-body2
}

// TestSweepStreamAndResume drives a checkpointed sweep to completion and
// verifies the resumed rerun restores every value without re-evaluating.
func TestSweepStreamAndResume(t *testing.T) {
	dir := t.TempDir()
	_, ts := newTestServer(t, Options{CheckpointDir: dir})

	req := SweepRequest{
		Model:         ModelSpec{App: "stencil"},
		Space:         SpaceSpec{Per: 2},
		Checkpoint:    "sweep.ck",
		IncludeValues: true,
		ProgressMS:    10,
	}
	run := func(resume bool) SweepResult {
		req.Resume = resume
		resp := postJSON(t, ts.Client(), ts.URL+"/v1/sweep", req)
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(resp.Body)
			t.Fatalf("status = %d, body %s", resp.StatusCode, body)
		}
		var result SweepResult
		sc := bufio.NewScanner(resp.Body)
		seen := false
		for sc.Scan() {
			var probe struct {
				Type string `json:"type"`
			}
			if err := json.Unmarshal(sc.Bytes(), &probe); err != nil {
				t.Fatalf("frame: %v", err)
			}
			if probe.Type == "result" {
				if err := json.Unmarshal(sc.Bytes(), &result); err != nil {
					t.Fatalf("result frame: %v", err)
				}
				seen = true
			}
		}
		if !seen {
			t.Fatalf("stream ended without a result frame")
		}
		return result
	}

	first := run(false)
	if first.Error != nil {
		t.Fatalf("sweep failed: %+v", first.Error)
	}
	if got := len(first.Report.Completed); got != 64 {
		t.Fatalf("completed %d points, want 64", got)
	}
	if first.BestIndex < 0 || first.BestValue == nil || math.IsInf(float64(*first.BestValue), 1) {
		t.Fatalf("no finite best: index %d", first.BestIndex)
	}
	if len(first.Values) != 64 {
		t.Fatalf("values slice has %d entries, want 64", len(first.Values))
	}
	if _, err := os.Stat(filepath.Join(dir, "sweep.ck")); err != nil {
		t.Fatalf("checkpoint not written: %v", err)
	}

	second := run(true)
	if second.Report.Resumed != 64 {
		t.Fatalf("resumed %d points, want 64", second.Report.Resumed)
	}
	if second.Engine.Evaluations != 0 {
		t.Fatalf("resumed sweep re-evaluated %d points", second.Engine.Evaluations)
	}
	if float64(*second.BestValue) != float64(*first.BestValue) {
		t.Fatalf("resumed best %v != original best %v", *second.BestValue, *first.BestValue)
	}
}

func TestAPSEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp := postJSON(t, ts.Client(), ts.URL+"/v1/aps", APSRequest{
		Model: ModelSpec{App: "fft"},
		Space: SpaceSpec{Per: 2},
	})
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var out APSResponse
	decodeBody(t, resp, &out)
	if out.Analytic.N < 1 {
		t.Fatalf("analytic N = %d, want ≥ 1", out.Analytic.N)
	}
	if out.BestIndex < 0 || out.BestValue == nil {
		t.Fatalf("APS found no best point")
	}
	if out.SpaceSize != 64 {
		t.Fatalf("space size %d, want 64", out.SpaceSize)
	}
	if out.Simulations <= 0 || out.Simulations >= out.SpaceSize {
		t.Fatalf("APS ran %d simulations over a %d-point space; the slice must be a strict subset",
			out.Simulations, out.SpaceSize)
	}
}

// TestGracefulShutdown is the drain contract: with a slow sweep in
// flight, Shutdown flips /readyz to 503 while the listener still answers,
// rejects new work, cancels the sweep at the drain deadline so it flushes
// its checkpoint, and only then returns.
func TestGracefulShutdown(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestServer(t, Options{CheckpointDir: dir})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	body := startSweep(t, ctx, ts.URL, slowSweepRequest("drain.ck"))
	waitFor(t, "sweep in flight", func() bool { return s.Stats().InFlight == 1 })
	// Wait until at least one completed point hit the on-disk checkpoint
	// (cadence 1), so the final flush is guaranteed non-empty.
	ckFile := filepath.Join(dir, "drain.ck")
	waitFor(t, "first checkpoint write", func() bool {
		ck, err := dse.LoadCheckpoint(ckFile)
		return err == nil && len(ck.Indices) > 0
	})

	shutdownErr := make(chan error, 1)
	go func() {
		drainCtx, drainCancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
		defer drainCancel()
		shutdownErr <- s.Shutdown(drainCtx)
	}()

	// The listener is still open: /readyz must answer 503 during the
	// drain, and new work must be rejected as unavailable.
	waitFor(t, "draining state", func() bool { return s.Stats().Draining })
	resp, err := ts.Client().Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatalf("GET /readyz during drain: %v", err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz during drain = %d, want 503", resp.StatusCode)
	}
	var ready readyzResponse
	decodeBody(t, resp, &ready)
	if ready.Ready {
		t.Fatalf("/readyz reports ready while draining")
	}

	work := postJSON(t, ts.Client(), ts.URL+"/v1/evaluate", EvaluateRequest{
		Model: ModelSpec{App: "tmm"},
		Point: testPoints(t, 1)[0],
	})
	if work.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("work during drain = %d, want 503", work.StatusCode)
	}
	var env struct {
		Error ErrorBody `json:"error"`
	}
	decodeBody(t, work, &env)
	if env.Error.Code != CodeUnavailable {
		t.Fatalf("code = %q, want %q", env.Error.Code, CodeUnavailable)
	}

	// The 729-point simulated sweep cannot finish in 300ms, so the drain
	// deadline forces cancellation and Shutdown reports it.
	if err := <-shutdownErr; err == nil {
		t.Fatalf("Shutdown returned nil; want the forced-drain deadline error")
	}
	raw := <-body
	if raw == nil {
		t.Fatalf("sweep response was lost")
	}
	var result SweepResult
	for _, line := range bytes.Split(bytes.TrimSpace(raw), []byte("\n")) {
		var probe struct {
			Type string `json:"type"`
		}
		if json.Unmarshal(line, &probe) == nil && probe.Type == "result" {
			if err := json.Unmarshal(line, &result); err != nil {
				t.Fatalf("result frame: %v", err)
			}
		}
	}
	if !result.Report.Canceled {
		t.Fatalf("drained sweep did not report cancellation: %+v", result.Report)
	}
	// The cancelled sweep flushed its progress.
	ck, err := dse.LoadCheckpoint(filepath.Join(dir, "drain.ck"))
	if err != nil {
		t.Fatalf("loading flushed checkpoint: %v", err)
	}
	if len(ck.Indices) == 0 {
		t.Fatalf("flushed checkpoint is empty")
	}
	if s.Stats().InFlight != 0 {
		t.Fatalf("requests still in flight after Shutdown")
	}
}

func TestStatusEndpoints(t *testing.T) {
	s, ts := newTestServer(t, Options{})

	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /healthz status = %d, want 200", resp.StatusCode)
	}
	resp.Body.Close()

	resp, err = ts.Client().Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatalf("GET /readyz: %v", err)
	}
	var ready readyzResponse
	decodeBody(t, resp, &ready)
	if !ready.Ready {
		t.Fatalf("fresh server not ready")
	}
	if ready.Engine.Workers < 1 || ready.Engine.CacheCapacity < 1 {
		t.Fatalf("engine snapshot incomplete: %+v", ready.Engine)
	}
	if want := []string{"fft", "fluidanimate", "stencil", "tmm"}; fmt.Sprint(ready.Models) != fmt.Sprint(want) {
		t.Fatalf("models = %v, want %v", ready.Models, want)
	}

	// A request, then /metrics must expose the server_* instruments.
	postJSON(t, ts.Client(), ts.URL+"/v1/evaluate", EvaluateRequest{
		Model: ModelSpec{App: "tmm"},
		Point: testPoints(t, 1)[0],
	}).Body.Close()
	resp, err = ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	text, _ := io.ReadAll(resp.Body)
	for _, want := range []string{"server_requests_total", "server_admitted_total", "server_request_seconds", "engine_cache_hits_total"} {
		if !bytes.Contains(text, []byte(want)) {
			t.Fatalf("/metrics misses %s:\n%s", want, text)
		}
	}
	if s.Stats().Admitted != 1 {
		t.Fatalf("admitted = %d, want 1", s.Stats().Admitted)
	}
}

// TestStatsJSONFieldNames pins the wire names of the /readyz payload:
// server Stats and the engine Snapshot it embeds are a tool contract.
func TestStatsJSONFieldNames(t *testing.T) {
	data, err := json.Marshal(Stats{})
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var fields map[string]interface{}
	if err := json.Unmarshal(data, &fields); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	want := []string{"requests", "admitted", "shed", "errors", "panics", "in_flight", "queued", "draining"}
	if len(fields) != len(want) {
		t.Fatalf("Stats has %d JSON fields, want %d: %s", len(fields), len(want), data)
	}
	for _, name := range want {
		if _, ok := fields[name]; !ok {
			t.Fatalf("Stats JSON misses %q: %s", name, data)
		}
	}

	data, err = json.Marshal(engine.Snapshot{})
	if err != nil {
		t.Fatalf("marshal snapshot: %v", err)
	}
	for _, name := range []string{`"workers"`, `"cache_capacity"`, `"stats"`} {
		if !bytes.Contains(data, []byte(name)) {
			t.Fatalf("engine.Snapshot JSON misses %s: %s", name, data)
		}
	}
}

func TestCheckpointNameValidation(t *testing.T) {
	s := New(Options{CheckpointDir: t.TempDir()})
	ctx := context.Background()
	for _, bad := range []string{"../escape", "a/b", ".hidden", "", "-dash"} {
		if p, err := s.checkpointPath(ctx, bad); bad != "" && err == nil {
			t.Fatalf("checkpointPath(%q) accepted as %q", bad, p)
		}
	}
	p, err := s.checkpointPath(ctx, "run-1.ck")
	if err != nil {
		t.Fatalf("valid name rejected: %v", err)
	}
	if filepath.Dir(p) != s.opts.CheckpointDir {
		t.Fatalf("checkpoint %q escaped the configured directory", p)
	}
}
