package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/dse"
	"repro/internal/robust"
)

// withFaultyEvaluators routes every resolved evaluator through a
// fault-injection harness for the duration of the test.
func withFaultyEvaluators(t *testing.T, pFail, pPanic float64, seed uint64) {
	t.Helper()
	prev := testWrapEvaluator
	testWrapEvaluator = func(ev dse.CtxEvaluator) dse.CtxEvaluator {
		f := robust.NewFaulty(ev, seed)
		f.PFail = pFail
		f.PPanic = pPanic
		return f
	}
	t.Cleanup(func() { testWrapEvaluator = prev })
}

// checkEnvelope asserts body is exactly the {"error":{code,message}}
// wire shape with both fields populated and no unknown siblings.
func checkEnvelope(t *testing.T, origin string, body []byte) ErrorBody {
	t.Helper()
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	var env errorEnvelope
	if err := dec.Decode(&env); err != nil {
		t.Fatalf("%s: error body is not the envelope: %v\nbody: %s", origin, err, body)
	}
	if env.Error.Code == "" || env.Error.Message == "" {
		t.Fatalf("%s: envelope misses code or message: %s", origin, body)
	}
	return env.Error
}

// TestErrorEnvelopeStableUnderFaults hammers the work endpoints with a
// misbehaving evaluator — transient failures and panics injected below
// the engine — and checks every failure response still matches the
// documented envelope with a stable code. The engine's retry layer may
// absorb some faults; whatever escapes must never surface as a bare
// string or a half-written body.
func TestErrorEnvelopeStableUnderFaults(t *testing.T) {
	// High enough that retries (3 attempts) still fail most calls.
	withFaultyEvaluators(t, 0.45, 0.45, 42)
	// CacheSize -1: a failing evaluator must not be memoized anyway, but
	// disabling the cache keeps every request on the fault path.
	_, ts := newTestServer(t, Options{Workers: 2, MaxConcurrent: 4, CacheSize: -1})
	points := testPoints(t, 8)
	client := &http.Client{}

	allowed := map[string]bool{
		CodeEvaluationFailed: true,
		CodeEvaluatorPanic:   true,
	}
	sawFailure := false

	// Single evaluations: every non-200 is an envelope.
	for i, pt := range points {
		resp := postJSON(t, client, ts.URL+"/v1/evaluate", EvaluateRequest{
			Model: ModelSpec{App: "tmm"}, Point: pt,
		})
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			continue
		}
		sawFailure = true
		e := checkEnvelope(t, "evaluate", body)
		if !allowed[e.Code] {
			t.Fatalf("evaluate %d: unexpected code %q (status %d)", i, e.Code, resp.StatusCode)
		}
		if resp.StatusCode >= 500 && e.Code != CodeEvaluatorPanic {
			t.Fatalf("evaluate %d: 5xx carries code %q", i, e.Code)
		}
	}

	// Batch: per-point failures are envelope-shaped error fields on the
	// NDJSON lines, and the summary still arrives.
	resp := postJSON(t, client, ts.URL+"/v1/evaluate:batch", BatchRequest{
		Model: ModelSpec{App: "tmm"}, Points: points,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d, want 200 (failures ride the stream)", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lines, summaries := 0, 0
	for sc.Scan() {
		line := sc.Bytes()
		if bytes.Contains(line, []byte(`"done"`)) {
			summaries++
			continue
		}
		lines++
		var res BatchResult
		if err := json.Unmarshal(line, &res); err != nil {
			t.Fatalf("batch line %d unparseable: %v\n%s", lines, err, line)
		}
		if res.Error != nil {
			sawFailure = true
			if res.Error.Code == "" || res.Error.Message == "" {
				t.Fatalf("batch line %d error misses code or message: %s", lines, line)
			}
			if !allowed[res.Error.Code] {
				t.Fatalf("batch line %d: unexpected code %q", lines, res.Error.Code)
			}
		}
	}
	resp.Body.Close()
	if lines != len(points) || summaries != 1 {
		t.Fatalf("batch emitted %d result lines and %d summaries, want %d and 1", lines, summaries, len(points))
	}

	// Sweeps either fail before streaming (an envelope) or stream to a
	// terminal result frame whose embedded error, if any, carries the
	// same structured body.
	resp = postJSON(t, client, ts.URL+"/v1/sweep", SweepRequest{
		Model: ModelSpec{App: "tmm"}, Space: SpaceSpec{Per: 2},
	})
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		checkEnvelope(t, "sweep", body)
	} else {
		sc = bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		var last string
		for sc.Scan() {
			if line := strings.TrimSpace(sc.Text()); line != "" {
				last = line
			}
		}
		resp.Body.Close()
		if last == "" {
			t.Fatalf("sweep stream ended empty")
		}
		var result SweepResult
		if err := json.Unmarshal([]byte(last), &result); err != nil {
			t.Fatalf("sweep terminal frame unparseable: %v\n%s", err, last)
		}
		if result.Type != "result" {
			t.Fatalf("sweep stream ended on a %q frame, want result", result.Type)
		}
		if result.Error != nil && (result.Error.Code == "" || result.Error.Message == "") {
			t.Fatalf("sweep result error misses code or message: %s", last)
		}
	}

	if !sawFailure {
		t.Fatalf("fault injection produced no failures; the test exercised nothing")
	}
}
