package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// jobSweepRequest is the standard job body of these tests: a 64-point
// simulated sweep, slow enough to observe running and deterministic
// under the fixed default seed.
func jobSweepRequest() JobSubmitRequest {
	return JobSubmitRequest{Sweep: &SweepRequest{
		Model:           ModelSpec{App: "tmm"},
		Evaluator:       EvaluatorSpec{Kind: "sim", TotalRefs: 2000},
		Space:           SpaceSpec{Per: 2},
		CheckpointEvery: 4,
		IncludeValues:   true,
	}}
}

// getJSON GETs url (optionally keyed) and decodes the body into v,
// returning the status.
func getJSON(t *testing.T, base, path, key string, v interface{}) int {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, base+path, nil)
	if err != nil {
		t.Fatalf("request: %v", err)
	}
	if key != "" {
		req.Header.Set("X-API-Key", key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	if v != nil && resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("decoding GET %s: %v", path, err)
		}
	}
	return resp.StatusCode
}

// submitJob POSTs sub and returns the accepted record.
func submitJob(t *testing.T, base string, sub JobSubmitRequest) Job {
	t.Helper()
	resp := postJSON(t, http.DefaultClient, base+"/v1/jobs", sub)
	if resp.StatusCode != http.StatusAccepted {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("submit = %d, want 202\n%s", resp.StatusCode, body)
	}
	var j Job
	decodeBody(t, resp, &j)
	if !jobIDRx.MatchString(j.ID) {
		t.Fatalf("submit returned malformed job ID %q", j.ID)
	}
	return j
}

// waitJobState polls the job until its state is terminal, failing the
// test if that terminal state differs from want.
func waitJobState(t *testing.T, base, id, want string) Job {
	t.Helper()
	var j Job
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if status := getJSON(t, base, "/v1/jobs/"+id, "", &j); status != http.StatusOK {
			t.Fatalf("poll job %s = %d", id, status)
		}
		if terminalJobState(j.State) {
			if j.State != want {
				t.Fatalf("job %s finished %s (error: %+v), want %s", id, j.State, j.Error, want)
			}
			return j
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state (last: %s)", id, j.State)
	return j
}

// TestJobLifecycle drives one sweep job from submission to deletion:
// 202 with a pending record, poll to succeeded, fetch the result, then
// cancel (409: already terminal), delete (204) and observe the 404.
func TestJobLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2, JobDir: t.TempDir()})

	j := submitJob(t, ts.URL, jobSweepRequest())
	if j.Kind != "sweep" || j.Tenant != AnonymousTenant || j.Attempts != 0 {
		t.Fatalf("accepted record %+v", j)
	}
	if terminalJobState(j.State) {
		t.Fatalf("job born terminal: %s", j.State)
	}

	// Result before success is a 409 naming the live state.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + j.ID + "/result")
	if err != nil {
		t.Fatalf("early result: %v", err)
	}
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("result before success = %d, want 409", resp.StatusCode)
	}
	var env errorEnvelope
	decodeBody(t, resp, &env)
	if env.Error.Code != CodeConflict {
		t.Fatalf("early result code = %q, want %q", env.Error.Code, CodeConflict)
	}

	done := waitJobState(t, ts.URL, j.ID, JobSucceeded)
	if done.Attempts != 1 || done.Started == "" || done.Finished == "" {
		t.Fatalf("succeeded record %+v", done)
	}
	if done.Report == nil || len(done.Report.Completed) != 64 {
		t.Fatalf("succeeded job report %+v, want 64 completed", done.Report)
	}

	// The job appears in the list.
	var list JobList
	if status := getJSON(t, ts.URL, "/v1/jobs", "", &list); status != http.StatusOK {
		t.Fatalf("list = %d", status)
	}
	if len(list.Jobs) != 1 || list.Jobs[0].ID != j.ID {
		t.Fatalf("list = %+v, want exactly job %s", list.Jobs, j.ID)
	}

	// The result is the deterministic payload.
	var res SweepJobResult
	if status := getJSON(t, ts.URL, "/v1/jobs/"+j.ID+"/result", "", &res); status != http.StatusOK {
		t.Fatalf("result = %d", status)
	}
	if len(res.Values) != 64 || res.BestIndex < 0 || res.BestIndex >= 64 {
		t.Fatalf("result %+v, want 64 values and a best index", res)
	}

	// Cancel after success conflicts; delete retires the record.
	resp = postJSON(t, http.DefaultClient, ts.URL+"/v1/jobs/"+j.ID+"/cancel", struct{}{})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("cancel after success = %d, want 409", resp.StatusCode)
	}
	resp.Body.Close()
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+j.ID, nil)
	if resp, err = http.DefaultClient.Do(req); err != nil {
		t.Fatalf("delete: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete = %d, want 204", resp.StatusCode)
	}
	if status := getJSON(t, ts.URL, "/v1/jobs/"+j.ID, "", nil); status != http.StatusNotFound {
		t.Fatalf("get after delete = %d, want 404", status)
	}
}

// TestJobCancel cancels a running job: the record goes canceled (and
// stays canceled on a second, idempotent cancel), delete then works.
func TestJobCancel(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, JobDir: t.TempDir()})
	sub := jobSweepRequest()
	sub.Sweep.Evaluator.TotalRefs = 50000 // slow enough to catch mid-run
	j := submitJob(t, ts.URL, sub)

	cancel := func() Job {
		resp := postJSON(t, http.DefaultClient, ts.URL+"/v1/jobs/"+j.ID+"/cancel", struct{}{})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("cancel = %d, want 200", resp.StatusCode)
		}
		var out Job
		decodeBody(t, resp, &out)
		return out
	}
	cancel()
	done := waitJobState(t, ts.URL, j.ID, JobCanceled)
	if done.Result != nil {
		t.Fatalf("canceled job carries a result")
	}
	// Idempotent: cancelling again reports the same terminal record.
	if again := cancel(); again.State != JobCanceled {
		t.Fatalf("second cancel state = %s", again.State)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+j.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("delete: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete canceled job = %d, want 204", resp.StatusCode)
	}
}

// TestJobSubmitValidation exercises the synchronous submit-time checks:
// every rejection is a 400 validation envelope, and nothing is persisted.
func TestJobSubmitValidation(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, JobDir: t.TempDir()})
	sweep := func(mut func(*SweepRequest)) JobSubmitRequest {
		sub := jobSweepRequest()
		mut(sub.Sweep)
		return sub
	}
	cases := []struct {
		name   string
		sub    JobSubmitRequest
		status int
		code   string
		want   string // substring of the message
	}{
		{"no work", JobSubmitRequest{},
			http.StatusBadRequest, CodeValidation, "no work"},
		{"both kinds", JobSubmitRequest{
			Sweep: jobSweepRequest().Sweep,
			APS:   &APSRequest{Model: ModelSpec{App: "tmm"}},
		}, http.StatusBadRequest, CodeValidation, "exactly one"},
		{"kind mismatch", JobSubmitRequest{Kind: "aps", Sweep: jobSweepRequest().Sweep},
			http.StatusBadRequest, CodeValidation, "does not match"},
		{"named checkpoint", sweep(func(r *SweepRequest) { r.Checkpoint = "ck" }),
			http.StatusBadRequest, CodeValidation, "own checkpoints"},
		{"resume flag", sweep(func(r *SweepRequest) { r.Resume = true }),
			http.StatusBadRequest, CodeValidation, "own checkpoints"},
		{"index out of range", sweep(func(r *SweepRequest) { r.Indices = []int{64} }),
			http.StatusBadRequest, CodeValidation, "outside space"},
		{"unknown app", sweep(func(r *SweepRequest) { r.Model.App = "no-such-app" }),
			http.StatusNotFound, CodeNotFound, "no-such-app"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := postJSON(t, http.DefaultClient, ts.URL+"/v1/jobs", tc.sub)
			if resp.StatusCode != tc.status {
				t.Fatalf("status = %d, want %d", resp.StatusCode, tc.status)
			}
			var env errorEnvelope
			decodeBody(t, resp, &env)
			if env.Error.Code != tc.code {
				t.Fatalf("code = %q, want %q", env.Error.Code, tc.code)
			}
			if !strings.Contains(env.Error.Message, tc.want) {
				t.Fatalf("message %q misses %q", env.Error.Message, tc.want)
			}
		})
	}
	var list JobList
	if status := getJSON(t, ts.URL, "/v1/jobs", "", &list); status != http.StatusOK || len(list.Jobs) != 0 {
		t.Fatalf("rejected submissions persisted: %d, %+v", status, list.Jobs)
	}
}

// TestJobsDisabledWithoutJobDir checks the endpoints 404 when no JobDir
// is configured.
func TestJobsDisabledWithoutJobDir(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	resp := postJSON(t, http.DefaultClient, ts.URL+"/v1/jobs", jobSweepRequest())
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("submit without JobDir = %d, want 404", resp.StatusCode)
	}
}

// TestJobTenantScoping checks jobs are invisible across tenants: a
// foreign job ID is an indistinguishable 404 on every verb, and lists
// are filtered.
func TestJobTenantScoping(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2, JobDir: t.TempDir(), Tenants: []TenantConfig{
		{Name: "acme", Key: "ka"},
		{Name: "bob", Key: "kb"},
	}})

	// Submit as acme.
	data, _ := json.Marshal(jobSweepRequest())
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", bytes.NewReader(data))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-API-Key", "ka")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202", resp.StatusCode)
	}
	var j Job
	decodeBody(t, resp, &j)
	if j.Tenant != "acme" {
		t.Fatalf("job tenant = %q", j.Tenant)
	}

	// Bob sees nothing: get, result, cancel, delete all 404.
	if status := getJSON(t, ts.URL, "/v1/jobs/"+j.ID, "kb", nil); status != http.StatusNotFound {
		t.Fatalf("foreign get = %d, want 404", status)
	}
	if status := getJSON(t, ts.URL, "/v1/jobs/"+j.ID+"/result", "kb", nil); status != http.StatusNotFound {
		t.Fatalf("foreign result = %d, want 404", status)
	}
	for _, probe := range []struct{ method, path string }{
		{http.MethodPost, "/v1/jobs/" + j.ID + "/cancel"},
		{http.MethodDelete, "/v1/jobs/" + j.ID},
	} {
		req, _ := http.NewRequest(probe.method, ts.URL+probe.path, nil)
		req.Header.Set("X-API-Key", "kb")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("%s %s: %v", probe.method, probe.path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("foreign %s = %d, want 404", probe.path, resp.StatusCode)
		}
	}
	var bobList JobList
	if status := getJSON(t, ts.URL, "/v1/jobs", "kb", &bobList); status != http.StatusOK || len(bobList.Jobs) != 0 {
		t.Fatalf("bob's list: %d, %+v", status, bobList.Jobs)
	}
	var acmeList JobList
	if status := getJSON(t, ts.URL, "/v1/jobs", "ka", &acmeList); status != http.StatusOK || len(acmeList.Jobs) != 1 {
		t.Fatalf("acme's list: %d, %+v", status, acmeList.Jobs)
	}
}

// TestJobCrashAdoptionByteIdenticalResume is the PR's acceptance test: a
// sweep job killed mid-run by a forced drain (the crash stand-in — no
// terminal state reaches disk) is adopted by the next server over the
// same JobDir, resumes from its own checkpoint, and produces a result
// byte-identical to an uninterrupted run of the same submission.
func TestJobCrashAdoptionByteIdenticalResume(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process-lifecycle test")
	}
	dir := t.TempDir()
	opts := func(jobDir string) Options {
		return Options{Workers: 2, MaxConcurrent: 2, JobDir: jobDir}
	}

	// First life: submit, wait for measurable progress, then "crash".
	s1 := New(opts(dir))
	ts1 := httptest.NewServer(s1)
	t.Cleanup(ts1.Close)
	j := submitJob(t, ts1.URL, jobSweepRequest())
	waitFor(t, "job progress", func() bool {
		var cur Job
		if getJSON(t, ts1.URL, "/v1/jobs/"+j.ID, "", &cur) != http.StatusOK {
			return false
		}
		if terminalJobState(cur.State) {
			t.Fatalf("job finished (%s) before the crash; raise TotalRefs", cur.State)
		}
		return cur.Progress != nil && cur.Progress.Evaluated >= 8
	})
	// A forced drain: the expired context cancels every runner and waits
	// for handlers to unwind, persisting no terminal state — exactly the
	// disk picture a SIGKILL leaves behind.
	expired, cancel := context.WithDeadline(context.Background(), time.Unix(0, 0))
	defer cancel()
	if err := s1.Shutdown(expired); err == nil {
		t.Fatalf("forced drain reported a clean shutdown")
	}
	ts1.Close()
	onDisk, err := (&jobStore{dir: dir}).load(j.ID)
	if err != nil {
		t.Fatalf("reading crashed record: %v", err)
	}
	if terminalJobState(onDisk.State) {
		t.Fatalf("crash persisted terminal state %s", onDisk.State)
	}

	// Second life over the same JobDir: the orphan is adopted and resumed.
	s2 := New(opts(dir))
	ts2 := httptest.NewServer(s2)
	t.Cleanup(ts2.Close)
	resumed := waitJobState(t, ts2.URL, j.ID, JobSucceeded)
	if resumed.Attempts != 2 {
		t.Fatalf("resumed job ran %d attempts, want 2", resumed.Attempts)
	}
	if resumed.Report == nil || resumed.Report.Resumed == 0 {
		t.Fatalf("adopted job restored nothing from its checkpoint: %+v", resumed.Report)
	}

	// Reference: the same submission straight through on a fresh JobDir.
	s3 := New(opts(t.TempDir()))
	ts3 := httptest.NewServer(s3)
	t.Cleanup(ts3.Close)
	ref := submitJob(t, ts3.URL, jobSweepRequest())
	straight := waitJobState(t, ts3.URL, ref.ID, JobSucceeded)
	if straight.Attempts != 1 {
		t.Fatalf("reference job ran %d attempts", straight.Attempts)
	}

	if !bytes.Equal(resumed.Result, straight.Result) {
		t.Fatalf("resumed result differs from the uninterrupted run:\nresumed:  %s\nstraight: %s",
			resumed.Result, straight.Result)
	}
}
