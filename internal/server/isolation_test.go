package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// evalAs posts one uncacheable /v1/evaluate as the keyed tenant and
// returns the latency and status. Each call draws a fresh simulator
// seed, so the shared memo cache cannot absorb the load.
func evalAs(t *testing.T, client *http.Client, base, key string, seed uint64, point []float64) (time.Duration, int) {
	t.Helper()
	req := EvaluateRequest{
		Model:     ModelSpec{App: "tmm"},
		Evaluator: EvaluatorSpec{Kind: "sim", Seed: seed, TotalRefs: 2000},
		Point:     point,
	}
	start := time.Now()
	resp := postJSONKeyed(t, client, base+"/v1/evaluate", key, req)
	resp.Body.Close()
	return time.Since(start), resp.StatusCode
}

// postJSONKeyed is postJSON with an X-API-Key header (empty key: none).
func postJSONKeyed(t *testing.T, client *http.Client, url, key string, body interface{}) *http.Response {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(data))
	if err != nil {
		t.Fatalf("request: %v", err)
	}
	req.Header.Set("Content-Type", "application/json")
	if key != "" {
		req.Header.Set("X-API-Key", key)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	return resp
}

// TestTenantIsolationUnderFlood is the tentpole acceptance scenario: a
// flooder tenant saturates the server while a trickler sends occasional
// requests. The trickler must never be shed, and its tail latency must
// stay within 2x its unloaded baseline (with a small floor absorbing
// scheduler noise on tiny boxes).
func TestTenantIsolationUnderFlood(t *testing.T) {
	if testing.Short() {
		t.Skip("load test")
	}
	_, ts := newTestServer(t, Options{
		Workers:       2,
		MaxConcurrent: 2,
		MaxQueue:      32,
		Tenants: []TenantConfig{
			// The flooder's quota leaves one admission slot free and its
			// queue bound sheds the excess instead of parking it.
			{Name: "flooder", Key: "flood-key", MaxConcurrent: 1, MaxQueue: 16},
			{Name: "trickler", Key: "trickle-key"},
		},
	})
	point := testPoints(t, 1)[0]
	var seed atomic.Uint64

	trickleOnce := func(client *http.Client) time.Duration {
		d, status := evalAs(t, client, ts.URL, "trickle-key", seed.Add(1), point)
		if status == http.StatusTooManyRequests {
			t.Fatalf("trickler was shed with 429; isolation broken")
		}
		if status != http.StatusOK {
			t.Fatalf("trickler request failed with %d", status)
		}
		return d
	}

	// Unloaded baseline.
	const samples = 12
	client := &http.Client{}
	baseline := make([]time.Duration, samples)
	for i := range baseline {
		baseline[i] = trickleOnce(client)
	}

	// Flood: concurrent clients hammering until told to stop.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var floodOK, floodShed atomic.Int64
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := &http.Client{}
			for {
				select {
				case <-stop:
					return
				default:
				}
				_, status := evalAs(t, c, ts.URL, "flood-key", seed.Add(1), point)
				switch status {
				case http.StatusOK:
					floodOK.Add(1)
				case http.StatusTooManyRequests:
					floodShed.Add(1)
				default:
					t.Errorf("flooder request failed with %d", status)
					return
				}
			}
		}()
	}

	// Give the flood a moment to saturate, then trickle through it.
	time.Sleep(100 * time.Millisecond)
	loaded := make([]time.Duration, samples)
	for i := range loaded {
		loaded[i] = trickleOnce(client)
		time.Sleep(10 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	if floodOK.Load() == 0 {
		t.Fatalf("flood produced no successful requests; the scenario never loaded the server")
	}
	baseP99, loadedP99 := p99(baseline), p99(loaded)
	// A floor keeps machine noise from failing the ratio check: the
	// baseline is a few ms on a quiet box, and under `go test ./...` the
	// flood competes for CPU with every other package's tests, which
	// inflates compute time without any scheduling unfairness. Broken
	// isolation (the trickler parked behind the flooder's 16-deep queue)
	// produces p99s of hundreds of ms, far beyond 2x this floor.
	floor := 60 * time.Millisecond
	base := baseP99
	if base < floor {
		base = floor
	}
	t.Logf("trickler p99: %v unloaded, %v under flood (flooder: %d ok, %d shed)",
		baseP99, loadedP99, floodOK.Load(), floodShed.Load())
	if raceDetector {
		// Race instrumentation slows evaluation so much that the wall-clock
		// ratio is meaningless; the zero-shed assertion above still holds.
		t.Logf("skipping the latency ratio under -race")
		return
	}
	if loadedP99 > 2*base {
		t.Fatalf("trickler p99 %v under flood exceeds 2x the unloaded baseline %v (floor %v)",
			loadedP99, baseP99, floor)
	}
}

// p99 is the nearest-rank 99th percentile.
func p99(samples []time.Duration) time.Duration {
	s := append([]time.Duration(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := (len(s)*99 + 99) / 100
	if idx > len(s) {
		idx = len(s)
	}
	return s[idx-1]
}

// TestTenantRateLimit429 checks the token bucket sheds with 429 +
// Retry-After and the stable rate_limited code.
func TestTenantRateLimit429(t *testing.T) {
	_, ts := newTestServer(t, Options{
		Tenants: []TenantConfig{{Name: "acme", Key: "k", RatePerSec: 0.001, Burst: 1}},
	})
	point := testPoints(t, 1)[0]
	client := &http.Client{}

	if _, status := evalAs(t, client, ts.URL, "k", 1, point); status != http.StatusOK {
		t.Fatalf("first request = %d, want 200", status)
	}
	resp := postJSONKeyed(t, client, ts.URL+"/v1/evaluate", "k", EvaluateRequest{
		Model: ModelSpec{App: "tmm"}, Point: point,
	})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatalf("429 carries no Retry-After")
	}
	var env errorEnvelope
	decodeBody(t, resp, &env)
	if env.Error.Code != CodeRateLimited {
		t.Fatalf("code = %q, want %q", env.Error.Code, CodeRateLimited)
	}
}

// TestTenantAuthRequired checks keyed mode rejects unknown and missing
// keys with the unauthorized envelope.
func TestTenantAuthRequired(t *testing.T) {
	_, ts := newTestServer(t, Options{
		Tenants: []TenantConfig{{Name: "acme", Key: "good-key"}},
	})
	point := testPoints(t, 1)[0]
	client := &http.Client{}
	for _, key := range []string{"", "wrong-key"} {
		resp := postJSONKeyed(t, client, ts.URL+"/v1/evaluate", key, EvaluateRequest{
			Model: ModelSpec{App: "tmm"}, Point: point,
		})
		var env errorEnvelope
		code := resp.StatusCode
		decodeBody(t, resp, &env)
		if code != http.StatusUnauthorized || env.Error.Code != CodeUnauthorized {
			t.Fatalf("key %q: status %d code %q, want 401 %q", key, code, env.Error.Code, CodeUnauthorized)
		}
	}
	if _, status := evalAs(t, client, ts.URL, "good-key", 1, point); status != http.StatusOK {
		t.Fatalf("good key rejected with %d", status)
	}
}
