package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/core"
	"repro/internal/robust"
	"repro/internal/solve"
)

// Stable error codes of the JSON error envelope. Clients dispatch on the
// code, never on the message text, so the set below is part of the wire
// contract (DESIGN.md §10) and existing values must not change meaning.
const (
	// CodeBadRequest marks a syntactically broken request: unparseable
	// JSON, a missing body, an unusable query parameter.
	CodeBadRequest = "bad_request"
	// CodeValidation marks a well-formed request with semantically invalid
	// content: out-of-domain parameter overrides, a malformed space, a
	// point of the wrong dimension.
	CodeValidation = "validation"
	// CodeNotFound marks an unknown route or an unknown catalog entry.
	CodeNotFound = "not_found"
	// CodeOverloaded is the admission controller's load-shedding answer;
	// the response carries a Retry-After header.
	CodeOverloaded = "overloaded"
	// CodeUnavailable is returned while the server is draining for
	// shutdown.
	CodeUnavailable = "unavailable"
	// CodeTimeout marks a request that exceeded its evaluation deadline.
	CodeTimeout = "timeout"
	// CodeCanceled marks a request abandoned by the client before the
	// evaluation finished.
	CodeCanceled = "canceled"
	// CodeConvergence marks an analytic solve that failed to converge
	// (solve.ConvergenceError); details carry the solver diagnostics.
	CodeConvergence = "convergence"
	// CodeEvaluatorPanic marks an evaluation whose panic the engine
	// isolated but could not retry into success.
	CodeEvaluatorPanic = "evaluator_panic"
	// CodeEvaluationFailed marks an evaluation whose final outcome after
	// retries was an error other than a panic or cancellation.
	CodeEvaluationFailed = "evaluation_failed"
	// CodeInternal marks a server-side fault (isolated handler panic,
	// unexpected error class).
	CodeInternal = "internal"
	// CodeUnauthorized marks a request whose API key is missing or
	// unknown when a tenant table is configured.
	CodeUnauthorized = "unauthorized"
	// CodeRateLimited is a tenant's token-bucket shed; the response
	// carries a Retry-After header sized to the bucket's refill.
	CodeRateLimited = "rate_limited"
	// CodeConflict marks a request that contends with live state owned by
	// another request: a checkpoint name already in use by a running
	// sweep, or a job transition that its current state forbids.
	CodeConflict = "conflict"
)

// ErrorBody is the payload of every non-2xx JSON response.
type ErrorBody struct {
	Code    string            `json:"code"`
	Message string            `json:"message"`
	Details map[string]string `json:"details,omitempty"`
}

// errorEnvelope is the wire shape: the error object under a single
// "error" key, so success and failure payloads can never be confused.
type errorEnvelope struct {
	Error ErrorBody `json:"error"`
}

// validationError marks request-content failures so classify maps them to
// CodeValidation rather than CodeInternal.
type validationError struct{ msg string }

func (e *validationError) Error() string { return e.msg }

// validationf builds a validation error.
func validationf(format string, args ...interface{}) error {
	return &validationError{msg: fmt.Sprintf(format, args...)}
}

// notFoundError marks unknown-catalog-entry failures.
type notFoundError struct{ msg string }

func (e *notFoundError) Error() string { return e.msg }

// notFoundf builds a not-found error.
func notFoundf(format string, args ...interface{}) error {
	return &notFoundError{msg: fmt.Sprintf(format, args...)}
}

// unauthorizedError marks API-key failures.
type unauthorizedError struct{ msg string }

func (e *unauthorizedError) Error() string { return e.msg }

// unauthorizedf builds an unauthorized error.
func unauthorizedf(format string, args ...interface{}) error {
	return &unauthorizedError{msg: fmt.Sprintf(format, args...)}
}

// conflictError marks live-state contention failures (409).
type conflictError struct{ msg string }

func (e *conflictError) Error() string { return e.msg }

// conflictf builds a conflict error.
func conflictf(format string, args ...interface{}) error {
	return &conflictError{msg: fmt.Sprintf(format, args...)}
}

// classify maps an error from the evaluation stack onto the stable
// (HTTP status, code, details) triple of the envelope contract.
func classify(err error) (int, ErrorBody) {
	var ve *validationError
	var nf *notFoundError
	var ue *unauthorizedError
	var cf *conflictError
	var ce *solve.ConvergenceError
	var pe *robust.PanicError
	switch {
	case errors.As(err, &nf):
		return http.StatusNotFound, ErrorBody{Code: CodeNotFound, Message: nf.msg}
	case errors.As(err, &ue):
		return http.StatusUnauthorized, ErrorBody{Code: CodeUnauthorized, Message: ue.msg}
	case errors.As(err, &cf):
		return http.StatusConflict, ErrorBody{Code: CodeConflict, Message: cf.msg}
	case errors.As(err, &ve):
		return http.StatusBadRequest, ErrorBody{Code: CodeValidation, Message: ve.msg}
	case errors.Is(err, core.ErrInvalidApp):
		return http.StatusBadRequest, ErrorBody{Code: CodeValidation, Message: err.Error()}
	case errors.As(err, &ce):
		return http.StatusUnprocessableEntity, ErrorBody{
			Code:    CodeConvergence,
			Message: err.Error(),
			Details: map[string]string{
				"method":     ce.Method,
				"iterations": fmt.Sprintf("%d", ce.Iterations),
				"residual":   fmt.Sprintf("%g", ce.Residual),
			},
		}
	case errors.As(err, &pe):
		return http.StatusInternalServerError, ErrorBody{Code: CodeEvaluatorPanic, Message: err.Error()}
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, ErrorBody{Code: CodeTimeout, Message: "evaluation deadline exceeded"}
	case errors.Is(err, context.Canceled):
		// 499 is the de-facto "client closed request" status; there is no
		// stdlib constant for it.
		return 499, ErrorBody{Code: CodeCanceled, Message: "request canceled"}
	default:
		return http.StatusUnprocessableEntity, ErrorBody{Code: CodeEvaluationFailed, Message: err.Error()}
	}
}

// writeError renders err as the JSON envelope with the classified status.
func writeError(w http.ResponseWriter, err error) {
	status, body := classify(err)
	writeErrorBody(w, status, body)
}

// writeErrorBody renders an explicit envelope.
func writeErrorBody(w http.ResponseWriter, status int, body ErrorBody) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encoding a flat struct of strings cannot fail; the error return is
	// the client hanging up mid-write, which has no remedy here.
	_ = json.NewEncoder(w).Encode(errorEnvelope{Error: body})
}
