package server

import (
	"context"
	"errors"
	"sync/atomic"
	"time"
)

// errSaturated is returned by admission.acquire when both the execution
// slots and the wait queue are full; handlers translate it into
// 429 + Retry-After.
var errSaturated = errors.New("server: admission queue full")

// admission is the semaphore-based load gate in front of every work
// endpoint: at most maxConcurrent requests evaluate at once, at most
// maxQueue more wait for a slot, and everything beyond that is shed
// immediately so a traffic spike degrades into fast 429s instead of an
// unbounded goroutine pile-up (each queued request holds a goroutine and
// a connection, so the queue bound is the server's memory bound).
type admission struct {
	slots    chan struct{}
	maxQueue int64
	queued   atomic.Int64
}

// newAdmission builds a gate with the given concurrency and queue bounds
// (both ≥ 1 after defaulting by the caller).
func newAdmission(maxConcurrent, maxQueue int) *admission {
	return &admission{
		slots:    make(chan struct{}, maxConcurrent),
		maxQueue: int64(maxQueue),
	}
}

// acquire blocks until an execution slot is free, the context ends, or
// the wait queue overflows (errSaturated). On nil return the caller owns
// a slot and must release it.
func (a *admission) acquire(ctx context.Context) error {
	select {
	case a.slots <- struct{}{}:
		return nil
	default:
	}
	if a.queued.Add(1) > a.maxQueue {
		a.queued.Add(-1)
		return errSaturated
	}
	defer a.queued.Add(-1)
	select {
	case a.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// release frees the slot taken by a successful acquire.
func (a *admission) release() { <-a.slots }

// inUse returns the number of occupied execution slots.
func (a *admission) inUse() int { return len(a.slots) }

// waiting returns the number of requests queued for a slot.
func (a *admission) waiting() int64 { return a.queued.Load() }

// retryAfterSeconds converts the configured hint into the integer-second
// Retry-After header value, rounding up so the client never retries
// before the hint elapses.
func retryAfterSeconds(d time.Duration) int {
	if d <= 0 {
		return 1
	}
	s := int((d + time.Second - 1) / time.Second)
	if s < 1 {
		return 1
	}
	return s
}
