package server

import (
	"errors"
	"time"
)

// errSaturated is returned by fairShare.acquire when the caller's queue
// bound (per-tenant or global) overflows; handlers translate it into
// 429 + Retry-After. The scheduler itself lives in fairshare.go: PR 6
// replaced the single FIFO semaphore that used to live here with the
// weighted deficit-round-robin gate, which also fixed the
// cancel-while-queued accounting race (an abandoned waiter now leaves
// the queued count immediately, and a grant racing the cancellation
// hands its slot to the next waiter instead of stranding it).
var errSaturated = errors.New("server: admission queue full")

// retryAfterSeconds converts a hint duration into the integer-second
// Retry-After header value, rounding up so the client never retries
// before the hint elapses.
func retryAfterSeconds(d time.Duration) int {
	if d <= 0 {
		return 1
	}
	s := int((d + time.Second - 1) / time.Second)
	if s < 1 {
		return 1
	}
	return s
}
