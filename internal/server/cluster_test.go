package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/robust"
)

// clusterPeer is one loopback cluster member: a full Server (private
// engine) joined to the shared ring, listening on a real TCP port so
// peers reach each other over HTTP and a "killed" peer's address can be
// re-bound to revive it.
type clusterPeer struct {
	name string
	url  string
	addr string
	srv  *Server
	cl   *cluster.Cluster
	reg  *obs.Registry
	hs   *http.Server
}

// kill closes the peer's listener and in-flight connections; the Server
// object stays alive so revive can re-bind the same address.
func (p *clusterPeer) kill() { _ = p.hs.Close() }

// revive re-binds the peer's original address with the same Server.
func (p *clusterPeer) revive(t *testing.T) {
	t.Helper()
	ln, err := net.Listen("tcp", p.addr)
	if err != nil {
		t.Fatalf("rebinding %s: %v", p.addr, err)
	}
	p.hs = &http.Server{Handler: p.srv}
	go func() { _ = p.hs.Serve(ln) }()
	t.Cleanup(p.kill)
}

// startClusterPeers boots an n-peer loopback cluster. Every peer gets
// its own engine, registry and ring view over the same membership.
func startClusterPeers(t *testing.T, n int, copts cluster.Options) []*clusterPeer {
	t.Helper()
	lns := make([]net.Listener, n)
	var cfg cluster.Config
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		lns[i] = ln
		cfg.Peers = append(cfg.Peers, cluster.PeerConfig{
			Name: fmt.Sprintf("p%d", i),
			URL:  "http://" + ln.Addr().String(),
		})
	}
	peers := make([]*clusterPeer, n)
	for i := 0; i < n; i++ {
		c := cfg
		c.Self = cfg.Peers[i].Name
		reg := obs.NewRegistry()
		o := copts
		o.Metrics = reg
		cl, err := cluster.New(c, o)
		if err != nil {
			t.Fatalf("cluster.New: %v", err)
		}
		srv := New(Options{Cluster: cl, Metrics: reg})
		p := &clusterPeer{
			name: c.Self,
			url:  cfg.Peers[i].URL,
			addr: lns[i].Addr().String(),
			srv:  srv,
			cl:   cl,
			reg:  reg,
			hs:   &http.Server{Handler: srv},
		}
		go func(ln net.Listener, hs *http.Server) { _ = hs.Serve(ln) }(lns[i], p.hs)
		t.Cleanup(p.kill)
		peers[i] = p
	}
	return peers
}

// sweepOver POSTs a sweep and returns its final result frame.
func sweepOver(t *testing.T, baseURL string, req SweepRequest) SweepResult {
	t.Helper()
	resp := postJSON(t, &http.Client{}, baseURL+"/v1/sweep", req)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("sweep status %d: %s", resp.StatusCode, body)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 64<<20)
	var res SweepResult
	found := false
	for sc.Scan() {
		var frame struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(sc.Bytes(), &frame); err != nil {
			t.Fatalf("bad frame %q: %v", sc.Bytes(), err)
		}
		if frame.Type == "result" {
			if err := json.Unmarshal(sc.Bytes(), &res); err != nil {
				t.Fatalf("result frame: %v", err)
			}
			found = true
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading sweep stream: %v", err)
	}
	if !found {
		t.Fatal("sweep stream ended without a result frame")
	}
	if res.Error != nil {
		t.Fatalf("sweep error: %+v", *res.Error)
	}
	return res
}

// wantBitIdentical compares two dense value slices bit for bit.
func wantBitIdentical(t *testing.T, label string, want, got []jsonFloat) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d values, want %d", label, len(got), len(want))
	}
	for i := range want {
		if math.Float64bits(float64(want[i])) != math.Float64bits(float64(got[i])) {
			t.Fatalf("%s: value[%d] = %x, want %x (bit divergence)",
				label, i, math.Float64bits(float64(got[i])), math.Float64bits(float64(want[i])))
		}
	}
}

// TestClusterSweepBitIdenticalToSingleNode is the tentpole acceptance
// check: a 3-peer loopback cluster sweeping the tmm and fft catalog
// models must produce exactly the single-node bits, and the work must
// actually have been partitioned over the ring.
func TestClusterSweepBitIdenticalToSingleNode(t *testing.T) {
	_, single := newTestServer(t, Options{})
	peers := startClusterPeers(t, 3, cluster.Options{})

	for _, app := range []string{"tmm", "fft"} {
		req := SweepRequest{
			Model:         ModelSpec{App: app},
			Space:         SpaceSpec{Per: 4},
			IncludeValues: true,
			ProgressMS:    50,
		}
		want := sweepOver(t, single.URL, req)
		got := sweepOver(t, peers[0].url, req)
		wantBitIdentical(t, app, want.Values, got.Values)
		if len(got.Report.Completed) != got.Report.Total || len(got.Report.Pending) != 0 {
			t.Fatalf("%s: cluster sweep incomplete: %d/%d done, %d pending",
				app, len(got.Report.Completed), got.Report.Total, len(got.Report.Pending))
		}
		if got.BestIndex != want.BestIndex {
			t.Fatalf("%s: best index %d, want %d", app, got.BestIndex, want.BestIndex)
		}
	}

	// The coordinator must have shipped a remote share, not swept alone.
	if peers[0].reg.Counter("cluster_remote_points_total").Value() == 0 {
		t.Fatal("cluster sweep routed no points to remote peers")
	}
	if peers[0].reg.Counter("cluster_local_points_total").Value() == 0 {
		t.Fatal("cluster sweep kept no points local")
	}
	if peers[0].reg.Counter("cluster_fallback_points_total").Value() != 0 {
		t.Fatal("healthy cluster fell back to local compute")
	}
}

// TestClusterBatchRemoteCacheHits drives the peer-eval exchange: a batch
// through the coordinator lands each point in its ring owner's cache, so
// the same batch again is served warm by the remote peers.
func TestClusterBatchRemoteCacheHits(t *testing.T) {
	peers := startClusterPeers(t, 3, cluster.Options{})
	req := BatchRequest{Model: ModelSpec{App: "tmm"}, Points: testPoints(t, 64)}

	run := func() (hits int) {
		resp := postJSON(t, &http.Client{}, peers[0].url+"/v1/evaluate:batch", req)
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("batch status %d", resp.StatusCode)
		}
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 64<<20)
		for sc.Scan() {
			var sum BatchSummary
			if err := json.Unmarshal(sc.Bytes(), &sum); err == nil && sum.Done {
				return sum.CacheHits
			}
		}
		t.Fatal("batch stream ended without a summary")
		return 0
	}
	if hits := run(); hits != 0 {
		t.Fatalf("cold batch reported %d cache hits", hits)
	}
	if hits := run(); hits != len(req.Points) {
		t.Fatalf("warm batch hit %d of %d points", hits, len(req.Points))
	}
	if peers[0].reg.Counter("cluster_remote_hits_total").Value() == 0 {
		t.Fatal("warm batch recorded no remote cache hits")
	}
}

// TestClusterSweepSurvivesPeerDeath is the fault-injection satellite:
// killing one peer mid-sweep must not change a single bit of the result
// (its share falls back to local compute), the victim's breaker opens,
// and once the peer returns at the same address the breaker readmits
// traffic and remote serving resumes.
func TestClusterSweepSurvivesPeerDeath(t *testing.T) {
	copts := cluster.Options{
		FailThreshold: 1,
		Cooldown:      150 * time.Millisecond,
		Retry:         robust.RetryPolicy{MaxAttempts: 1, BaseDelay: time.Millisecond},
	}
	peers := startClusterPeers(t, 3, copts)
	_, single := newTestServer(t, Options{})

	// A simulated workload big enough that the kill lands mid-sweep.
	req := SweepRequest{
		Model:         ModelSpec{App: "fluidanimate"},
		Evaluator:     EvaluatorSpec{Kind: "sim", TotalRefs: 300},
		Space:         SpaceSpec{Per: 3},
		IncludeValues: true,
		ProgressMS:    20,
	}
	want := sweepOver(t, single.URL, req)

	victim := peers[2]
	killed := make(chan struct{})
	go func() {
		defer close(killed)
		time.Sleep(30 * time.Millisecond)
		victim.kill()
	}()
	got := sweepOver(t, peers[0].url, req)
	<-killed

	wantBitIdentical(t, "fluidanimate", want.Values, got.Values)
	if len(got.Report.Completed) != got.Report.Total || len(got.Report.Failed) != 0 {
		t.Fatalf("sweep with dead peer: %d/%d completed, %d failed",
			len(got.Report.Completed), got.Report.Total, len(got.Report.Failed))
	}

	// Drive the breaker open deterministically: a batch spanning the
	// space must route some points at the dead victim and fail over.
	batch := BatchRequest{Model: ModelSpec{App: "tmm"}, Points: testPoints(t, 64)}
	fb0 := peers[0].reg.Counter("cluster_fallback_points_total").Value()
	resp := postJSON(t, &http.Client{}, peers[0].url+"/v1/evaluate:batch", batch)
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if open, err := peers[0].cl.BreakerOpen(victim.name); err != nil || !open {
		t.Fatalf("breaker open = %v (err %v), want open after failed exchange", open, err)
	}
	if fb := peers[0].reg.Counter("cluster_fallback_points_total").Value(); fb == fb0 {
		t.Fatal("dead peer's points were not recomputed locally")
	}

	// Revive the victim at its old address: after the cooldown the next
	// exchange is the half-open trial, closes the breaker, and remote
	// serving resumes — visible as remote cache hits once the victim has
	// warmed the batch's points.
	victim.revive(t)
	rh0 := peers[0].reg.Counter("cluster_remote_hits_total").Value()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp := postJSON(t, &http.Client{}, peers[0].url+"/v1/evaluate:batch", batch)
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		open, err := peers[0].cl.BreakerOpen(victim.name)
		if err != nil {
			t.Fatal(err)
		}
		if !open && peers[0].reg.Counter("cluster_remote_hits_total").Value() > rh0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("revived peer not readmitted: breaker open=%v, remote hits %d→%d",
				open, rh0, peers[0].reg.Counter("cluster_remote_hits_total").Value())
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// TestReadyzClusterFieldNames pins the peer-ring summary's wire shape:
// readyz carries a "cluster" object with stable field names (operators
// and the bench harness parse them), and standalone servers omit it.
func TestReadyzClusterFieldNames(t *testing.T) {
	peers := startClusterPeers(t, 2, cluster.Options{})
	resp, err := http.Get(peers[0].url + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var payload map[string]json.RawMessage
	decodeBody(t, resp, &payload)
	raw, ok := payload["cluster"]
	if !ok {
		t.Fatal("readyz omits the cluster summary on a clustered server")
	}
	var sum map[string]interface{}
	if err := json.Unmarshal(raw, &sum); err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"self", "peers", "alive", "ejected"} {
		if _, ok := sum[field]; !ok {
			t.Errorf("cluster summary missing stable field %q (have %v)", field, sum)
		}
	}
	if sum["peers"].(float64) != 2 || sum["alive"].(float64) != 2 {
		t.Fatalf("summary %v, want peers=2 alive=2", sum)
	}

	// Standalone: no cluster key, and the peer endpoints do not exist.
	_, single := newTestServer(t, Options{})
	resp, err = http.Get(single.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var alone map[string]json.RawMessage
	decodeBody(t, resp, &alone)
	if _, ok := alone["cluster"]; ok {
		t.Fatal("standalone readyz reports a cluster summary")
	}
	resp = postJSON(t, single.Client(), single.URL+"/internal/v1/peer-eval", cluster.PeerEvalRequest{})
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("standalone peer-eval status %d, want 404", resp.StatusCode)
	}
}
