package server

import (
	"context"
	"encoding/json"
	"math"
	"net/http"
	"os"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Tenancy defaults; exported so the CLI help and the docs quote one
// source of truth.
const (
	// DefaultTenantWeight is a tenant's fair-share weight when its config
	// names none.
	DefaultTenantWeight = 1
	// AnonymousTenant is the identity of every request when no tenant
	// table is configured (single-tenant mode), and of catalog-internal
	// work whose context carries no tenant.
	AnonymousTenant = "anonymous"
)

// TenantConfig declares one tenant of the service: its API key, its
// fair-share weight over the admission and engine worker pools, its
// concurrency quota, and its token-bucket rate limit. The zero limits
// mean "unbounded" — the global admission caps still apply.
type TenantConfig struct {
	// Name identifies the tenant in metrics, job records and checkpoint
	// namespaces. Required; word characters only.
	Name string `json:"name"`
	// Key is the API key presented as `Authorization: Bearer <key>` or
	// `X-API-Key`. Empty marks the catch-all entry that serves requests
	// carrying no (or an unknown-to-nobody) key — without one, keyless
	// requests are rejected with 401.
	Key string `json:"key"`
	// Weight is the tenant's share of the fair-share schedulers (≤0:
	// DefaultTenantWeight). A weight-4 tenant receives 4 slot grants per
	// round for every 1 a weight-1 tenant receives — when both have work
	// queued; an idle tenant's share is redistributed.
	Weight int `json:"weight,omitempty"`
	// MaxConcurrent bounds the tenant's concurrently admitted work
	// requests (0: no per-tenant bound).
	MaxConcurrent int `json:"max_concurrent,omitempty"`
	// MaxQueue bounds the tenant's requests waiting for admission; beyond
	// it the tenant — and only the tenant — is shed with 429 (0: the
	// server's MaxQueue default).
	MaxQueue int `json:"max_queue,omitempty"`
	// RatePerSec is the tenant's sustained request rate; requests beyond
	// the token bucket are shed with 429 + Retry-After before they queue
	// (0: unlimited).
	RatePerSec float64 `json:"rate_per_sec,omitempty"`
	// Burst is the token bucket's capacity (0: max(RatePerSec, 1)).
	Burst float64 `json:"burst,omitempty"`
}

// tenantNameRx validates tenant names: they become metric label values,
// checkpoint sub-directories and job-record fields, so only word
// characters are allowed and "jobs" is reserved for the job subsystem's
// checkpoint namespace.
var tenantNameRx = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]*$`)

// normalize applies the documented defaults and validates the config.
func (c TenantConfig) normalize() (TenantConfig, error) {
	if !tenantNameRx.MatchString(c.Name) {
		return c, validationf("server: invalid tenant name %q", c.Name)
	}
	if c.Name == checkpointJobsNamespace {
		return c, validationf("server: tenant name %q is reserved for the job subsystem", c.Name)
	}
	if c.Weight <= 0 {
		c.Weight = DefaultTenantWeight
	}
	if c.MaxConcurrent < 0 || c.MaxQueue < 0 {
		return c, validationf("server: tenant %q has negative limits", c.Name)
	}
	if math.IsNaN(c.RatePerSec) || math.IsInf(c.RatePerSec, 0) || c.RatePerSec < 0 {
		return c, validationf("server: tenant %q rate_per_sec %v is not a non-negative finite number", c.Name, c.RatePerSec)
	}
	if math.IsNaN(c.Burst) || math.IsInf(c.Burst, 0) || c.Burst < 0 {
		return c, validationf("server: tenant %q burst %v is not a non-negative finite number", c.Name, c.Burst)
	}
	//lint:allow floatguard zero is the documented "defaulted" sentinel, not a computed value
	if c.Burst == 0 {
		c.Burst = math.Max(c.RatePerSec, 1)
	}
	return c, nil
}

// tenantsFile is the on-disk shape of the -tenants config.
type tenantsFile struct {
	Tenants []TenantConfig `json:"tenants"`
}

// LoadTenantsFile reads a tenant table from a JSON file of the form
// {"tenants":[{...}, ...]}. It validates syntax only; SetTenants applies
// the semantic checks (unique names and keys) atomically.
func LoadTenantsFile(path string) ([]TenantConfig, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f tenantsFile
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return nil, validationf("server: tenants file %s: %v", path, err)
	}
	return f.Tenants, nil
}

// tenantState is one tenant's live serving state: its current config
// (swapped atomically on reload), its token bucket, and its resolved
// per-tenant instruments. States are keyed by name and survive config
// reloads, so a SIGHUP neither refills a tenant's bucket nor resets its
// metrics.
type tenantState struct {
	name string
	cfg  atomic.Pointer[TenantConfig]

	// Token bucket (lazy refill under mu).
	mu         sync.Mutex
	tokens     float64
	lastRefill time.Time

	obsRequests *obs.Counter
	obsShed     *obs.Counter
	obsQueueSec *obs.Histogram
	obsEvals    *obs.Counter
}

// newTenantState builds the state for one named tenant, resolving its
// labeled instruments once.
func newTenantState(cfg TenantConfig, metrics *obs.Registry) *tenantState {
	t := &tenantState{
		name:        cfg.Name,
		obsRequests: metrics.Counter(obs.Labeled("tenant_requests_total", "tenant", cfg.Name)),
		obsShed:     metrics.Counter(obs.Labeled("tenant_shed_total", "tenant", cfg.Name)),
		obsQueueSec: metrics.Histogram(obs.Labeled("tenant_queue_seconds", "tenant", cfg.Name), obs.LatencyBuckets()),
		obsEvals:    metrics.Counter(obs.Labeled("tenant_engine_evals_total", "tenant", cfg.Name)),
	}
	t.cfg.Store(&cfg)
	t.tokens = cfg.Burst
	return t
}

// config returns the tenant's current configuration.
func (t *tenantState) config() TenantConfig { return *t.cfg.Load() }

// allow answers one token-bucket admission question at time now: whether
// the request may proceed, and — when it may not — how long until the
// bucket next holds a full token (the Retry-After hint).
func (t *tenantState) allow(now time.Time) (bool, time.Duration) {
	cfg := t.cfg.Load()
	if cfg.RatePerSec <= 0 {
		return true, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.lastRefill.IsZero() {
		if elapsed := now.Sub(t.lastRefill).Seconds(); elapsed > 0 {
			t.tokens = math.Min(cfg.Burst, t.tokens+elapsed*cfg.RatePerSec)
		}
	}
	t.lastRefill = now
	if t.tokens >= 1 {
		t.tokens--
		return true, 0
	}
	wait := time.Duration((1 - t.tokens) / cfg.RatePerSec * float64(time.Second))
	return false, wait
}

// tenantTable is the immutable lookup structure the request path reads:
// swapped whole on reload, so lookups never take the reload lock.
type tenantTable struct {
	byKey    map[string]*tenantState
	catchAll *tenantState // entry with Key == "" (nil: keyless requests are rejected)
	open     bool         // true in single-tenant mode (no table configured)
	names    []string     // sorted tenant names, for /readyz
}

// tenants manages the tenant set: lock-free lookup through an atomic
// table pointer, and reload (SIGHUP) that preserves per-tenant state by
// name.
type tenants struct {
	metrics *obs.Registry

	mu     sync.Mutex // serializes reloads
	byName map[string]*tenantState
	anon   *tenantState // single-tenant-mode identity; always non-nil
	table  atomic.Pointer[tenantTable]
}

// newTenants builds the registry in single-tenant (open) mode.
func newTenants(metrics *obs.Registry) *tenants {
	anon := newTenantState(TenantConfig{Name: AnonymousTenant, Weight: DefaultTenantWeight}, metrics)
	ts := &tenants{
		metrics: metrics,
		byName:  map[string]*tenantState{AnonymousTenant: anon},
		anon:    anon,
	}
	ts.table.Store(&tenantTable{open: true, catchAll: anon, names: []string{AnonymousTenant}})
	return ts
}

// set atomically replaces the tenant table. Existing tenants (matched by
// name) keep their live state — bucket level, queue position, metrics —
// and only their configuration is swapped; new names get fresh state.
// An empty configs slice returns the registry to open single-tenant
// mode. Invalid configurations leave the current table untouched.
func (ts *tenants) set(configs []TenantConfig) error {
	normalized := make([]TenantConfig, len(configs))
	names := make(map[string]bool, len(configs))
	keys := make(map[string]bool, len(configs))
	for i, cfg := range configs {
		n, err := cfg.normalize()
		if err != nil {
			return err
		}
		if names[n.Name] {
			return validationf("server: duplicate tenant name %q", n.Name)
		}
		names[n.Name] = true
		if keys[n.Key] {
			return validationf("server: tenants share one key (second holder: %q)", n.Name)
		}
		keys[n.Key] = true
		normalized[i] = n
	}

	ts.mu.Lock()
	defer ts.mu.Unlock()
	if len(normalized) == 0 {
		anonCfg := ts.anon.config()
		ts.table.Store(&tenantTable{open: true, catchAll: ts.anon, names: []string{anonCfg.Name}})
		return nil
	}
	t := &tenantTable{byKey: make(map[string]*tenantState, len(normalized))}
	for _, cfg := range normalized {
		st := ts.byName[cfg.Name]
		if st == nil {
			st = newTenantState(cfg, ts.metrics)
			ts.byName[cfg.Name] = st
		} else {
			c := cfg
			st.cfg.Store(&c)
		}
		if cfg.Key == "" {
			t.catchAll = st
		} else {
			t.byKey[cfg.Key] = st
		}
		t.names = append(t.names, cfg.Name)
	}
	sort.Strings(t.names)
	ts.table.Store(t)
	return nil
}

// lookup resolves the request's tenant from its API key, or reports the
// authorization failure the handler should render.
func (ts *tenants) lookup(r *http.Request) (*tenantState, error) {
	t := ts.table.Load()
	key := apiKey(r)
	if key == "" {
		if t.catchAll != nil {
			return t.catchAll, nil
		}
		return nil, unauthorizedf("server: request carries no API key (Authorization: Bearer or X-API-Key)")
	}
	if t.open {
		// Single-tenant mode ignores keys rather than guessing at them.
		return t.catchAll, nil
	}
	if st, ok := t.byKey[key]; ok {
		return st, nil
	}
	return nil, unauthorizedf("server: unknown API key")
}

// byNameOrAnon returns the named tenant's state, falling back to the
// anonymous identity for work whose tenant has been removed from the
// table (an adopted job after a reload, say) — the work still runs, just
// under the shared default share.
func (ts *tenants) byNameOrAnon(name string) *tenantState {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if st, ok := ts.byName[name]; ok {
		return st
	}
	return ts.anon
}

// anonymous returns the single-tenant-mode identity.
func (ts *tenants) anonymous() *tenantState { return ts.anon }

// namesSnapshot lists the configured tenant names, sorted.
func (ts *tenants) namesSnapshot() []string {
	return append([]string(nil), ts.table.Load().names...)
}

// apiKey extracts the request's API key from the Authorization Bearer
// scheme or the X-API-Key header.
func apiKey(r *http.Request) string {
	auth := r.Header.Get("Authorization")
	if len(auth) > 7 && strings.EqualFold(auth[:7], "Bearer ") {
		return strings.TrimSpace(auth[7:])
	}
	return strings.TrimSpace(r.Header.Get("X-API-Key"))
}

// tenantCtxKey carries the resolved tenant through the request context,
// down to the engine gate.
type tenantCtxKey struct{}

// contextWithTenant attaches t to ctx.
func contextWithTenant(ctx context.Context, t *tenantState) context.Context {
	return context.WithValue(ctx, tenantCtxKey{}, t)
}

// tenantFrom resolves the context's tenant, or nil when the context
// carries none (engine work submitted outside the serving path).
func tenantFrom(ctx context.Context) *tenantState {
	t, _ := ctx.Value(tenantCtxKey{}).(*tenantState)
	return t
}
