// Package server exposes the repository's evaluation stack — the
// memoizing engine, the resilient DSE sweep and the APS flow — as a
// zero-dependency (net/http-only) JSON service. One Server fronts one
// shared engine.Engine, so every client's requests meet in the same
// fingerprint-keyed memo cache: C²-Bound what-if queries are cheap per
// point but arrive in large correlated batches, exactly the shape
// request coalescing and memoization exploit.
//
// Endpoints (DESIGN.md §10 carries the full table):
//
//	POST /v1/evaluate        one design point, JSON in/out
//	POST /v1/evaluate:batch  many points, NDJSON results in submission order
//	POST /v1/sweep           server-side dse.SweepCtx, NDJSON progress frames
//	POST /v1/aps             full aps.RunCtx, JSON result
//	GET  /healthz            liveness (process up)
//	GET  /readyz             readiness + engine/server statistics
//	GET  /metrics            obs.Registry text exposition
//
// The load path has production semantics: a semaphore-based admission
// controller with a bounded wait queue sheds overload as 429 +
// Retry-After, every request runs under a deadline derived from the
// ?timeout_ms cap, handlers are panic-isolated and report failures as
// typed JSON error envelopes with stable codes, and Shutdown drains
// in-flight work (cancelling stragglers so sweeps flush their
// checkpoints) while /readyz reports 503.
package server

import (
	"context"
	"net/http"
	"path/filepath"
	"regexp"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
)

// Default knobs of Options; exported so the CLI help and the docs quote
// one source of truth.
const (
	// DefaultMaxQueueFactor sizes the admission wait queue as a multiple
	// of the concurrency bound when Options.MaxQueue is zero.
	DefaultMaxQueueFactor = 4
	// DefaultTimeout bounds a request that names no ?timeout_ms.
	DefaultTimeout = 30 * time.Second
	// DefaultMaxTimeout caps the ?timeout_ms a client may request.
	DefaultMaxTimeout = 5 * time.Minute
	// DefaultRetryAfter is the 429 Retry-After hint.
	DefaultRetryAfter = 1 * time.Second
	// DefaultMaxBatchPoints bounds the points of one batch request.
	DefaultMaxBatchPoints = 1 << 17
)

// Options configures a new Server.
type Options struct {
	// Engine is the shared evaluation service behind every endpoint. Nil
	// builds one from Workers and CacheSize.
	Engine *engine.Engine
	// Workers bounds engine parallelism when Engine is nil (≤0:
	// GOMAXPROCS).
	Workers int
	// CacheSize is the private engine's memo capacity when Engine is nil
	// (0: engine default).
	CacheSize int

	// MaxConcurrent bounds concurrently admitted work requests (≤0: the
	// engine's worker count). Status endpoints bypass admission.
	MaxConcurrent int
	// MaxQueue bounds requests waiting for an admission slot (≤0:
	// DefaultMaxQueueFactor × MaxConcurrent). Beyond it the server sheds
	// with 429 + Retry-After.
	MaxQueue int
	// RetryAfter is the hint shed responses carry (≤0: DefaultRetryAfter).
	RetryAfter time.Duration

	// Timeout is the per-request evaluation deadline when the client
	// names none (≤0: DefaultTimeout).
	Timeout time.Duration
	// MaxTimeout caps the client's ?timeout_ms (≤0: DefaultMaxTimeout).
	MaxTimeout time.Duration

	// MaxBatchPoints bounds one batch request's point count (≤0:
	// DefaultMaxBatchPoints).
	MaxBatchPoints int

	// CheckpointDir enables sweep checkpoint/resume: requests name a
	// checkpoint file (sanitized, no path separators) inside this
	// directory. Empty rejects checkpointed requests.
	CheckpointDir string

	// Catalog is the named model registry (nil: DefaultCatalog).
	Catalog *Catalog

	// Tracer records server.* and engine.* spans (nil: tracing off).
	Tracer *obs.Tracer
	// Metrics receives the server_* instruments and backs /metrics (nil:
	// a private registry, so /metrics always works).
	Metrics *obs.Registry
}

// Stats is a snapshot of the server's own counters, reported by /readyz
// beside the engine snapshot.
type Stats struct {
	// Requests counts every HTTP request received, status endpoints
	// included.
	Requests uint64 `json:"requests"`
	// Admitted counts work requests that passed admission control.
	Admitted uint64 `json:"admitted"`
	// Shed counts work requests rejected with 429.
	Shed uint64 `json:"shed"`
	// Errors counts requests answered with an error envelope.
	Errors uint64 `json:"errors"`
	// Panics counts handler panics isolated by the recovery middleware.
	Panics uint64 `json:"panics"`
	// InFlight is the number of admitted requests currently executing.
	InFlight int `json:"in_flight"`
	// Queued is the number of requests waiting for an admission slot.
	Queued int64 `json:"queued"`
	// Draining reports that Shutdown has begun and /readyz answers 503.
	Draining bool `json:"draining"`
}

// Server is the evaluation service. Build it with New; it implements
// http.Handler and is safe for concurrent use.
type Server struct {
	opts    Options
	eng     *engine.Engine
	catalog *Catalog
	tracer  *obs.Tracer
	metrics *obs.Registry
	adm     *admission
	mux     *http.ServeMux

	requests atomic.Uint64
	admitted atomic.Uint64
	shed     atomic.Uint64
	errors   atomic.Uint64
	panics   atomic.Uint64

	obsRequests *obs.Counter
	obsAdmitted *obs.Counter
	obsShed     *obs.Counter
	obsErrors   *obs.Counter
	obsPanics   *obs.Counter
	obsInflight *obs.Gauge
	obsSeconds  *obs.Histogram

	draining atomic.Bool
	inflight sync.WaitGroup

	mu      sync.Mutex
	cancels map[uint64]context.CancelFunc
	nextID  uint64
}

// New builds a Server, its engine (when not shared) and its routes.
func New(opts Options) *Server {
	eng := opts.Engine
	metrics := opts.Metrics
	if metrics == nil {
		metrics = obs.NewRegistry()
	}
	if eng == nil {
		eng = engine.New(engine.Options{
			Workers:   opts.Workers,
			CacheSize: opts.CacheSize,
			Tracer:    opts.Tracer,
			Metrics:   metrics,
		})
	}
	maxConc := opts.MaxConcurrent
	if maxConc <= 0 {
		maxConc = eng.Workers()
	}
	maxQueue := opts.MaxQueue
	if maxQueue <= 0 {
		maxQueue = DefaultMaxQueueFactor * maxConc
	}
	if opts.RetryAfter <= 0 {
		opts.RetryAfter = DefaultRetryAfter
	}
	if opts.Timeout <= 0 {
		opts.Timeout = DefaultTimeout
	}
	if opts.MaxTimeout <= 0 {
		opts.MaxTimeout = DefaultMaxTimeout
	}
	if opts.MaxBatchPoints <= 0 {
		opts.MaxBatchPoints = DefaultMaxBatchPoints
	}
	catalog := opts.Catalog
	if catalog == nil {
		catalog = DefaultCatalog()
	}
	s := &Server{
		opts:    opts,
		eng:     eng,
		catalog: catalog,
		tracer:  opts.Tracer,
		metrics: metrics,
		adm:     newAdmission(maxConc, maxQueue),
		mux:     http.NewServeMux(),
		cancels: make(map[uint64]context.CancelFunc),

		obsRequests: metrics.Counter("server_requests_total"),
		obsAdmitted: metrics.Counter("server_admitted_total"),
		obsShed:     metrics.Counter("server_shed_total"),
		obsErrors:   metrics.Counter("server_errors_total"),
		obsPanics:   metrics.Counter("server_panics_total"),
		obsInflight: metrics.Gauge("server_inflight"),
		obsSeconds:  metrics.Histogram("server_request_seconds", obs.LatencyBuckets()),
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.Handle("POST /v1/evaluate", s.work("server.evaluate", s.handleEvaluate))
	s.mux.Handle("POST /v1/evaluate:batch", s.work("server.batch", s.handleBatch))
	s.mux.Handle("POST /v1/sweep", s.work("server.sweep", s.handleSweep))
	s.mux.Handle("POST /v1/aps", s.work("server.aps", s.handleAPS))
	return s
}

// Engine returns the server's evaluation engine (shared or private).
func (s *Server) Engine() *engine.Engine { return s.eng }

// Metrics returns the registry backing /metrics.
func (s *Server) Metrics() *obs.Registry { return s.metrics }

// Stats snapshots the server's counters.
func (s *Server) Stats() Stats {
	return Stats{
		Requests: s.requests.Load(),
		Admitted: s.admitted.Load(),
		Shed:     s.shed.Load(),
		Errors:   s.errors.Load(),
		Panics:   s.panics.Load(),
		InFlight: s.adm.inUse(),
		Queued:   s.adm.waiting(),
		Draining: s.draining.Load(),
	}
}

// Ready reports whether the server accepts work (false once Shutdown has
// begun).
func (s *Server) Ready() bool { return !s.draining.Load() }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	s.obsRequests.Add(1)
	s.mux.ServeHTTP(w, r)
}

// StartDrain flips the server into draining mode: /readyz answers 503
// and new work requests are rejected, while in-flight work continues.
// Idempotent; Shutdown calls it first.
func (s *Server) StartDrain() { s.draining.Store(true) }

// Shutdown gracefully stops the work plane: it drains in-flight
// requests, and when ctx expires first it cancels them — a cancelled
// sweep writes its final checkpoint on the way out — and still waits for
// the handlers to unwind. The HTTP listener itself belongs to the
// caller (http.Server.Shutdown); call StartDrain (or this) before
// closing the listener so load balancers see /readyz flip first.
// Returns ctx.Err() when the drain had to be forced.
func (s *Server) Shutdown(ctx context.Context) error {
	s.StartDrain()
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.cancelInflight()
		<-done
		return ctx.Err()
	}
}

// cancelInflight cancels every admitted request's context.
func (s *Server) cancelInflight() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, cancel := range s.cancels {
		cancel()
	}
}

// registerCancel tracks an in-flight request's cancel for forced drains.
func (s *Server) registerCancel(cancel context.CancelFunc) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	id := s.nextID
	s.cancels[id] = cancel
	return id
}

// unregisterCancel forgets a finished request.
func (s *Server) unregisterCancel(id uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.cancels, id)
}

// work wraps an evaluation handler with the full load-path middleware:
// drain rejection, admission control, the per-request deadline,
// observability propagation, a request span, and panic isolation.
func (s *Server) work(span string, h func(http.ResponseWriter, *http.Request)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			s.errors.Add(1)
			s.obsErrors.Add(1)
			writeErrorBody(w, http.StatusServiceUnavailable,
				ErrorBody{Code: CodeUnavailable, Message: "server is draining"})
			return
		}
		if err := s.adm.acquire(r.Context()); err != nil {
			s.errors.Add(1)
			s.obsErrors.Add(1)
			if err == errSaturated {
				s.shed.Add(1)
				s.obsShed.Add(1)
				w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s.opts.RetryAfter)))
				writeErrorBody(w, http.StatusTooManyRequests,
					ErrorBody{Code: CodeOverloaded, Message: "admission queue full; retry later"})
				return
			}
			writeError(w, err)
			return
		}
		defer s.adm.release()
		s.admitted.Add(1)
		s.obsAdmitted.Add(1)
		s.inflight.Add(1)
		defer s.inflight.Done()
		s.obsInflight.Add(1)
		defer s.obsInflight.Add(-1)

		timeout, err := s.requestTimeout(r)
		if err != nil {
			s.errors.Add(1)
			s.obsErrors.Add(1)
			writeErrorBody(w, http.StatusBadRequest, ErrorBody{Code: CodeBadRequest, Message: err.Error()})
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), timeout)
		defer cancel()
		id := s.registerCancel(cancel)
		defer s.unregisterCancel(id)
		ctx = obs.ContextWithTracer(ctx, s.tracer)
		ctx = obs.ContextWithMetrics(ctx, s.metrics)
		ctx, sp := s.tracer.Start(ctx, span)
		start := time.Now()
		defer func() {
			s.obsSeconds.Observe(time.Since(start).Seconds())
			if rec := recover(); rec != nil {
				s.panics.Add(1)
				s.obsPanics.Add(1)
				s.errors.Add(1)
				s.obsErrors.Add(1)
				if sp != nil {
					sp.Annotate(obs.S("panic", "true"))
					sp.Finish()
				}
				// Best effort: if the handler already streamed a body the
				// envelope write fails silently, which is all HTTP offers.
				writeErrorBody(w, http.StatusInternalServerError,
					ErrorBody{Code: CodeInternal, Message: "internal server error"})
				return
			}
			sp.Finish()
		}()
		h(w, r.WithContext(ctx))
	})
}

// requestTimeout derives the request deadline from ?timeout_ms, clamped
// to MaxTimeout; absent or zero selects the server default.
func (s *Server) requestTimeout(r *http.Request) (time.Duration, error) {
	raw := r.URL.Query().Get("timeout_ms")
	if raw == "" {
		return s.opts.Timeout, nil
	}
	ms, err := strconv.ParseInt(raw, 10, 64)
	if err != nil || ms < 0 {
		return 0, validationf("server: timeout_ms %q is not a non-negative integer", raw)
	}
	if ms == 0 {
		return s.opts.Timeout, nil
	}
	d := time.Duration(ms) * time.Millisecond
	if d > s.opts.MaxTimeout {
		d = s.opts.MaxTimeout
	}
	return d, nil
}

// checkpointName validates a client-supplied checkpoint name and maps it
// into CheckpointDir. Only a single path element of word characters is
// accepted, so requests cannot escape the configured directory.
var checkpointNameRx = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]*$`)

func (s *Server) checkpointPath(name string) (string, error) {
	if name == "" {
		return "", nil
	}
	if s.opts.CheckpointDir == "" {
		return "", validationf("server: checkpointing disabled (no checkpoint directory configured)")
	}
	if !checkpointNameRx.MatchString(name) || name != filepath.Base(name) {
		return "", validationf("server: invalid checkpoint name %q", name)
	}
	return filepath.Join(s.opts.CheckpointDir, name), nil
}
