// Package server exposes the repository's evaluation stack — the
// memoizing engine, the resilient DSE sweep and the APS flow — as a
// zero-dependency (net/http-only) JSON service. One Server fronts one
// shared engine.Engine, so every client's requests meet in the same
// fingerprint-keyed memo cache: C²-Bound what-if queries are cheap per
// point but arrive in large correlated batches, exactly the shape
// request coalescing and memoization exploit.
//
// Endpoints (DESIGN.md §10 carries the full table):
//
//	POST /v1/evaluate        one design point, JSON in/out
//	POST /v1/evaluate:batch  many points, NDJSON results in submission order
//	POST /v1/sweep           server-side dse.SweepCtx, NDJSON progress frames
//	POST /v1/aps             full aps.RunCtx, JSON result
//	GET  /healthz            liveness (process up)
//	GET  /readyz             readiness + engine/server statistics
//	GET  /metrics            obs.Registry text exposition
//
// The load path has production semantics: a weighted deficit-round-robin
// admission gate with bounded per-tenant wait queues sheds overload as
// 429 + Retry-After, every request runs under a deadline derived from
// the ?timeout_ms cap, handlers are panic-isolated and report failures
// as typed JSON error envelopes with stable codes, and Shutdown drains
// in-flight work (cancelling stragglers so sweeps flush their
// checkpoints) while /readyz reports 503.
//
// Multi-tenancy (DESIGN.md §11): a tenant table maps API keys to named
// tenants with fair-share weights, concurrency quotas and token-bucket
// rate limits. Admission and the engine worker pool are both arbitrated
// per tenant, so a flooding tenant grows only its own queue; with no
// table configured the server runs in open single-tenant mode and the
// whole layer is inert. The /v1/jobs resource (jobs.go) runs sweeps and
// APS asynchronously with disk-backed state and checkpoint resume.
package server

import (
	"context"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/obs"
)

// Default knobs of Options; exported so the CLI help and the docs quote
// one source of truth.
const (
	// DefaultMaxQueueFactor sizes the admission wait queue as a multiple
	// of the concurrency bound when Options.MaxQueue is zero.
	DefaultMaxQueueFactor = 4
	// DefaultTimeout bounds a request that names no ?timeout_ms.
	DefaultTimeout = 30 * time.Second
	// DefaultMaxTimeout caps the ?timeout_ms a client may request.
	DefaultMaxTimeout = 5 * time.Minute
	// DefaultRetryAfter is the 429 Retry-After hint.
	DefaultRetryAfter = 1 * time.Second
	// DefaultMaxBatchPoints bounds the points of one batch request.
	DefaultMaxBatchPoints = 1 << 17
)

// Options configures a new Server.
type Options struct {
	// Engine is the shared evaluation service behind every endpoint. Nil
	// builds one from Workers and CacheSize.
	Engine *engine.Engine
	// Workers bounds engine parallelism when Engine is nil (≤0:
	// GOMAXPROCS).
	Workers int
	// CacheSize is the private engine's memo capacity when Engine is nil
	// (0: engine default).
	CacheSize int

	// MaxConcurrent bounds concurrently admitted work requests (≤0: the
	// engine's worker count). Status endpoints bypass admission.
	MaxConcurrent int
	// MaxQueue bounds requests waiting for an admission slot (≤0:
	// DefaultMaxQueueFactor × MaxConcurrent). Beyond it the server sheds
	// with 429 + Retry-After.
	MaxQueue int
	// RetryAfter is the hint shed responses carry (≤0: DefaultRetryAfter).
	RetryAfter time.Duration

	// Timeout is the per-request evaluation deadline when the client
	// names none (≤0: DefaultTimeout).
	Timeout time.Duration
	// MaxTimeout caps the client's ?timeout_ms (≤0: DefaultMaxTimeout).
	MaxTimeout time.Duration

	// MaxBatchPoints bounds one batch request's point count (≤0:
	// DefaultMaxBatchPoints).
	MaxBatchPoints int

	// CheckpointDir enables sweep checkpoint/resume: requests name a
	// checkpoint file (sanitized, no path separators) inside this
	// directory; named tenants write under a per-tenant subdirectory and
	// the job subsystem under the reserved "jobs" subdirectory. Empty
	// rejects checkpointed requests.
	CheckpointDir string

	// Tenants is the initial tenant table (see TenantConfig). Empty runs
	// the server in open single-tenant mode; SetTenants swaps the table
	// at runtime (the CLI wires it to SIGHUP).
	Tenants []TenantConfig

	// JobDir enables the /v1/jobs subsystem: one JSON record per job is
	// persisted here (atomic rename + fsync), and jobs found in "running"
	// state at startup are adopted and resumed from their checkpoints.
	// Empty disables the endpoints (404).
	JobDir string

	// Catalog is the named model registry (nil: DefaultCatalog).
	Catalog *Catalog

	// Cluster joins this server to a peer tier (internal/cluster): each
	// (fingerprint, point) key is routed to its ring owner, remote-owned
	// points travel over POST /internal/v1/peer-eval, sweeps are
	// partitioned by ownership, and any peer failure falls back to local
	// compute. Nil runs the server standalone (the endpoints 404). Pass
	// the same obs.Registry to both so /metrics shows the cluster_*
	// instruments.
	Cluster *cluster.Cluster

	// Tracer records server.* and engine.* spans (nil: tracing off).
	Tracer *obs.Tracer
	// Metrics receives the server_* instruments and backs /metrics (nil:
	// a private registry, so /metrics always works).
	Metrics *obs.Registry
}

// Stats is a snapshot of the server's own counters, reported by /readyz
// beside the engine snapshot.
type Stats struct {
	// Requests counts every HTTP request received, status endpoints
	// included.
	Requests uint64 `json:"requests"`
	// Admitted counts work requests that passed admission control.
	Admitted uint64 `json:"admitted"`
	// Shed counts work requests rejected with 429.
	Shed uint64 `json:"shed"`
	// Errors counts requests answered with an error envelope.
	Errors uint64 `json:"errors"`
	// Panics counts handler panics isolated by the recovery middleware.
	Panics uint64 `json:"panics"`
	// InFlight is the number of admitted requests currently executing.
	InFlight int `json:"in_flight"`
	// Queued is the number of requests waiting for an admission slot.
	Queued int64 `json:"queued"`
	// Draining reports that Shutdown has begun and /readyz answers 503.
	Draining bool `json:"draining"`
}

// Server is the evaluation service. Build it with New; it implements
// http.Handler and is safe for concurrent use.
type Server struct {
	opts    Options
	eng     *engine.Engine
	cluster *cluster.Cluster
	catalog *Catalog
	tracer  *obs.Tracer
	metrics *obs.Registry
	adm     *fairShare
	gate    *fairShare
	tenants *tenants
	jobs    *jobManager
	mux     *http.ServeMux

	ckMu    sync.Mutex
	ckInUse map[string]bool

	requests atomic.Uint64
	admitted atomic.Uint64
	shed     atomic.Uint64
	errors   atomic.Uint64
	panics   atomic.Uint64

	obsRequests *obs.Counter
	obsAdmitted *obs.Counter
	obsShed     *obs.Counter
	obsErrors   *obs.Counter
	obsPanics   *obs.Counter
	obsInflight *obs.Gauge
	obsSeconds  *obs.Histogram

	draining atomic.Bool
	inflight sync.WaitGroup

	mu      sync.Mutex
	cancels map[uint64]context.CancelFunc
	nextID  uint64
}

// New builds a Server, its engine (when not shared) and its routes.
// Invalid Options.Tenants panic (construction-time programmer error);
// use SetTenants for checked runtime swaps.
func New(opts Options) *Server {
	eng := opts.Engine
	metrics := opts.Metrics
	if metrics == nil {
		metrics = obs.NewRegistry()
	}
	ts := newTenants(metrics)
	var gate *fairShare
	if eng == nil {
		// The point-level fair-share gate arbitrates the private engine's
		// worker pool per tenant; its capacity is set once the engine has
		// resolved its worker count. A caller-supplied engine keeps its own
		// scheduling (it may be shared beyond this server).
		gate = newFairShare(1, false, 0, 0)
		eng = engine.New(engine.Options{
			Workers:   opts.Workers,
			CacheSize: opts.CacheSize,
			Tracer:    opts.Tracer,
			Metrics:   metrics,
			Gate:      &engineGate{fs: gate, ts: ts},
		})
		gate.setCapacity(eng.Workers())
	}
	maxConc := opts.MaxConcurrent
	if maxConc <= 0 {
		maxConc = eng.Workers()
	}
	maxQueue := opts.MaxQueue
	if maxQueue <= 0 {
		maxQueue = DefaultMaxQueueFactor * maxConc
	}
	if opts.RetryAfter <= 0 {
		opts.RetryAfter = DefaultRetryAfter
	}
	if opts.Timeout <= 0 {
		opts.Timeout = DefaultTimeout
	}
	if opts.MaxTimeout <= 0 {
		opts.MaxTimeout = DefaultMaxTimeout
	}
	if opts.MaxBatchPoints <= 0 {
		opts.MaxBatchPoints = DefaultMaxBatchPoints
	}
	catalog := opts.Catalog
	if catalog == nil {
		catalog = DefaultCatalog()
	}
	s := &Server{
		opts:    opts,
		eng:     eng,
		cluster: opts.Cluster,
		catalog: catalog,
		tracer:  opts.Tracer,
		metrics: metrics,
		adm:     newFairShare(maxConc, true, maxQueue, maxQueue),
		gate:    gate,
		tenants: ts,
		mux:     http.NewServeMux(),
		cancels: make(map[uint64]context.CancelFunc),
		ckInUse: make(map[string]bool),

		obsRequests: metrics.Counter("server_requests_total"),
		obsAdmitted: metrics.Counter("server_admitted_total"),
		obsShed:     metrics.Counter("server_shed_total"),
		obsErrors:   metrics.Counter("server_errors_total"),
		obsPanics:   metrics.Counter("server_panics_total"),
		obsInflight: metrics.Gauge("server_inflight"),
		obsSeconds:  metrics.Histogram("server_request_seconds", obs.LatencyBuckets()),
	}
	if len(opts.Tenants) > 0 {
		if err := ts.set(opts.Tenants); err != nil {
			//lint:allow errwrap construction-time misconfiguration; SetTenants is the checked path
			panic(err)
		}
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/catalog", s.handleCatalog)
	s.mux.Handle("POST /v1/evaluate", s.work("server.evaluate", s.handleEvaluate))
	s.mux.Handle("POST /v1/evaluate:batch", s.work("server.batch", s.handleBatch))
	s.mux.Handle("POST /v1/sweep", s.work("server.sweep", s.handleSweep))
	s.mux.Handle("POST /v1/aps", s.work("server.aps", s.handleAPS))
	if s.cluster != nil {
		s.mux.Handle("POST /internal/v1/peer-eval", s.peerWork("server.peer_eval", s.handlePeerEval))
		s.mux.Handle("POST /internal/v1/peer-sweep", s.peerWork("server.peer_sweep", s.handlePeerSweep))
	}
	if opts.JobDir != "" {
		s.jobs = newJobManager(s, opts.JobDir)
		s.mux.Handle("POST /v1/jobs", s.control("server.jobs.submit", s.handleJobSubmit))
		s.mux.Handle("GET /v1/jobs", s.control("server.jobs.list", s.handleJobList))
		s.mux.Handle("GET /v1/jobs/{id}", s.control("server.jobs.get", s.handleJobGet))
		s.mux.Handle("GET /v1/jobs/{id}/result", s.control("server.jobs.result", s.handleJobResult))
		s.mux.Handle("POST /v1/jobs/{id}/cancel", s.control("server.jobs.cancel", s.handleJobCancel))
		s.mux.Handle("DELETE /v1/jobs/{id}", s.control("server.jobs.delete", s.handleJobDelete))
		s.jobs.adoptOrphans()
	}
	return s
}

// SetTenants atomically replaces the tenant table (the CLI wires this to
// SIGHUP). Existing tenants keep their live state — token-bucket level,
// queue positions, metrics — matched by name; an empty slice returns the
// server to open single-tenant mode. On error the current table is
// untouched.
func (s *Server) SetTenants(configs []TenantConfig) error {
	return s.tenants.set(configs)
}

// TenantNames lists the configured tenant names, sorted.
func (s *Server) TenantNames() []string { return s.tenants.namesSnapshot() }

// Engine returns the server's evaluation engine (shared or private).
func (s *Server) Engine() *engine.Engine { return s.eng }

// Metrics returns the registry backing /metrics.
func (s *Server) Metrics() *obs.Registry { return s.metrics }

// Stats snapshots the server's counters.
func (s *Server) Stats() Stats {
	return Stats{
		Requests: s.requests.Load(),
		Admitted: s.admitted.Load(),
		Shed:     s.shed.Load(),
		Errors:   s.errors.Load(),
		Panics:   s.panics.Load(),
		InFlight: s.adm.inUseCount(),
		Queued:   int64(s.adm.waitingCount()),
		Draining: s.draining.Load(),
	}
}

// Ready reports whether the server accepts work (false once Shutdown has
// begun).
func (s *Server) Ready() bool { return !s.draining.Load() }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	s.obsRequests.Add(1)
	s.mux.ServeHTTP(w, r)
}

// StartDrain flips the server into draining mode: /readyz answers 503
// and new work requests are rejected, while in-flight work continues.
// Idempotent; Shutdown calls it first.
func (s *Server) StartDrain() { s.draining.Store(true) }

// Shutdown gracefully stops the work plane: it drains in-flight
// requests, and when ctx expires first it cancels them — a cancelled
// sweep writes its final checkpoint on the way out — and still waits for
// the handlers to unwind. The HTTP listener itself belongs to the
// caller (http.Server.Shutdown); call StartDrain (or this) before
// closing the listener so load balancers see /readyz flip first.
// Returns ctx.Err() when the drain had to be forced.
func (s *Server) Shutdown(ctx context.Context) error {
	s.StartDrain()
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.cancelInflight()
		<-done
		return ctx.Err()
	}
}

// cancelInflight cancels every admitted request's context.
func (s *Server) cancelInflight() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, cancel := range s.cancels {
		cancel()
	}
}

// registerCancel tracks an in-flight request's cancel for forced drains.
func (s *Server) registerCancel(cancel context.CancelFunc) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	id := s.nextID
	s.cancels[id] = cancel
	return id
}

// unregisterCancel forgets a finished request.
func (s *Server) unregisterCancel(id uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.cancels, id)
}

// engineGate adapts the engine-pool fairShare to engine.Gate: every
// EvaluateStream point acquires a WDRR slot under the tenant carried by
// the evaluation context, so a flooding tenant's batch cannot occupy the
// whole worker pool while another tenant's points wait.
type engineGate struct {
	fs *fairShare
	ts *tenants
}

// AcquireSlot implements engine.Gate.
func (g *engineGate) AcquireSlot(ctx context.Context) (func(), error) {
	t := tenantFrom(ctx)
	if t == nil {
		t = g.ts.anonymous()
	}
	release, err := g.fs.acquire(ctx, t)
	if err != nil {
		return nil, err
	}
	t.obsEvals.Add(1)
	return release, nil
}

// work wraps an evaluation handler with the full load-path middleware:
// drain rejection, tenant resolution, the token-bucket rate limit,
// fair-share admission, the per-request deadline, observability
// propagation, a request span, and panic isolation.
func (s *Server) work(span string, h func(http.ResponseWriter, *http.Request)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			s.errors.Add(1)
			s.obsErrors.Add(1)
			writeErrorBody(w, http.StatusServiceUnavailable,
				ErrorBody{Code: CodeUnavailable, Message: "server is draining"})
			return
		}
		t, err := s.tenants.lookup(r)
		if err != nil {
			s.errors.Add(1)
			s.obsErrors.Add(1)
			writeError(w, err)
			return
		}
		t.obsRequests.Add(1)
		if ok, wait := t.allow(time.Now()); !ok {
			s.shedTenant(w, t, retryAfterSeconds(wait),
				ErrorBody{Code: CodeRateLimited, Message: "tenant rate limit exceeded; retry later"})
			return
		}
		queued := time.Now()
		release, err := s.adm.acquire(r.Context(), t)
		t.obsQueueSec.Observe(time.Since(queued).Seconds())
		if err != nil {
			if err == errSaturated {
				s.shedTenant(w, t, retryAfterSeconds(s.opts.RetryAfter),
					ErrorBody{Code: CodeOverloaded, Message: "admission queue full; retry later"})
				return
			}
			s.errors.Add(1)
			s.obsErrors.Add(1)
			writeError(w, err)
			return
		}
		defer release()
		s.admitted.Add(1)
		s.obsAdmitted.Add(1)
		s.inflight.Add(1)
		defer s.inflight.Done()
		s.obsInflight.Add(1)
		defer s.obsInflight.Add(-1)

		timeout, err := s.requestTimeout(r)
		if err != nil {
			s.errors.Add(1)
			s.obsErrors.Add(1)
			writeErrorBody(w, http.StatusBadRequest, ErrorBody{Code: CodeBadRequest, Message: err.Error()})
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), timeout)
		defer cancel()
		id := s.registerCancel(cancel)
		defer s.unregisterCancel(id)
		ctx = contextWithTenant(ctx, t)
		ctx = obs.ContextWithTracer(ctx, s.tracer)
		ctx = obs.ContextWithMetrics(ctx, s.metrics)
		ctx, sp := s.tracer.Start(ctx, span)
		start := time.Now()
		defer func() {
			s.obsSeconds.Observe(time.Since(start).Seconds())
			if rec := recover(); rec != nil {
				s.panics.Add(1)
				s.obsPanics.Add(1)
				s.errors.Add(1)
				s.obsErrors.Add(1)
				if sp != nil {
					sp.Annotate(obs.S("panic", "true"))
					sp.Finish()
				}
				// Best effort: if the handler already streamed a body the
				// envelope write fails silently, which is all HTTP offers.
				writeErrorBody(w, http.StatusInternalServerError,
					ErrorBody{Code: CodeInternal, Message: "internal server error"})
				return
			}
			sp.Finish()
		}()
		h(w, r.WithContext(ctx))
	})
}

// shedTenant renders one 429, charging both the global and the tenant's
// shed counters.
func (s *Server) shedTenant(w http.ResponseWriter, t *tenantState, retryAfter int, body ErrorBody) {
	s.errors.Add(1)
	s.obsErrors.Add(1)
	s.shed.Add(1)
	s.obsShed.Add(1)
	t.obsShed.Add(1)
	w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
	writeErrorBody(w, http.StatusTooManyRequests, body)
}

// control wraps a /v1/jobs control-plane handler: tenant resolution, a
// request span and panic isolation — but no admission slot and no
// deadline beyond the client's, because submit/poll/cancel are cheap
// and must answer even while the work plane is saturated. Only submit
// consumes from the tenant's token bucket (it enqueues work; polling
// must stay free or clients would burn their budget watching jobs).
func (s *Server) control(span string, h func(http.ResponseWriter, *http.Request)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t, err := s.tenants.lookup(r)
		if err != nil {
			s.errors.Add(1)
			s.obsErrors.Add(1)
			writeError(w, err)
			return
		}
		t.obsRequests.Add(1)
		ctx := contextWithTenant(r.Context(), t)
		ctx = obs.ContextWithTracer(ctx, s.tracer)
		ctx = obs.ContextWithMetrics(ctx, s.metrics)
		ctx, sp := s.tracer.Start(ctx, span)
		defer func() {
			if rec := recover(); rec != nil {
				s.panics.Add(1)
				s.obsPanics.Add(1)
				s.errors.Add(1)
				s.obsErrors.Add(1)
				if sp != nil {
					sp.Annotate(obs.S("panic", "true"))
					sp.Finish()
				}
				writeErrorBody(w, http.StatusInternalServerError,
					ErrorBody{Code: CodeInternal, Message: "internal server error"})
				return
			}
			sp.Finish()
		}()
		h(w, r.WithContext(ctx))
	})
}

// requestTimeout derives the request deadline from ?timeout_ms, clamped
// to MaxTimeout; absent or zero selects the server default.
func (s *Server) requestTimeout(r *http.Request) (time.Duration, error) {
	raw := r.URL.Query().Get("timeout_ms")
	if raw == "" {
		return s.opts.Timeout, nil
	}
	ms, err := strconv.ParseInt(raw, 10, 64)
	if err != nil || ms < 0 {
		return 0, validationf("server: timeout_ms %q is not a non-negative integer", raw)
	}
	if ms == 0 {
		return s.opts.Timeout, nil
	}
	d := time.Duration(ms) * time.Millisecond
	if d > s.opts.MaxTimeout {
		d = s.opts.MaxTimeout
	}
	return d, nil
}

// checkpointName validates a client-supplied checkpoint name and maps it
// into CheckpointDir. Only a single path element of word characters is
// accepted, so requests cannot escape the configured directory.
var checkpointNameRx = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]*$`)

// checkpointJobsNamespace is the CheckpointDir subdirectory reserved for
// /v1/jobs checkpoints (files named by job ID); no tenant may claim it.
const checkpointJobsNamespace = "jobs"

// checkpointPath maps a client-supplied checkpoint name into
// CheckpointDir, namespaced by the context's tenant: the anonymous
// (single-tenant) identity keeps the flat legacy layout, named tenants
// write under CheckpointDir/<tenant>/ so equal names never collide
// across tenants.
func (s *Server) checkpointPath(ctx context.Context, name string) (string, error) {
	if name == "" {
		return "", nil
	}
	if s.opts.CheckpointDir == "" {
		return "", validationf("server: checkpointing disabled (no checkpoint directory configured)")
	}
	if !checkpointNameRx.MatchString(name) || name != filepath.Base(name) {
		return "", validationf("server: invalid checkpoint name %q", name)
	}
	t := tenantFrom(ctx)
	if t == nil || t.name == AnonymousTenant {
		return filepath.Join(s.opts.CheckpointDir, name), nil
	}
	dir := filepath.Join(s.opts.CheckpointDir, t.name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("server: creating tenant checkpoint directory: %w", err)
	}
	return filepath.Join(dir, name), nil
}

// lockCheckpoint claims exclusive use of a checkpoint path for one
// running request. Two concurrent sweeps naming the same checkpoint used
// to interleave writes and clobber each other's files; now the second
// request is answered 409 conflict and the client retries after the
// first finishes (resuming its checkpoint, even). Empty paths need no
// lock.
func (s *Server) lockCheckpoint(path string) (func(), error) {
	if path == "" {
		return func() {}, nil
	}
	s.ckMu.Lock()
	defer s.ckMu.Unlock()
	if s.ckInUse[path] {
		return nil, conflictf("server: checkpoint %q is in use by another request", filepath.Base(path))
	}
	s.ckInUse[path] = true
	return func() {
		s.ckMu.Lock()
		delete(s.ckInUse, path)
		s.ckMu.Unlock()
	}, nil
}
