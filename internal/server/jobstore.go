package server

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"

	"repro/internal/dse"
)

// Job states. The lifecycle (DESIGN.md §11) is
// pending → running → {succeeded, failed, canceled}; a job found still
// "running" on disk at startup was orphaned by a crash or restart and is
// adopted — re-run with Attempts incremented, resuming its checkpoint.
const (
	JobPending   = "pending"
	JobRunning   = "running"
	JobSucceeded = "succeeded"
	JobFailed    = "failed"
	JobCanceled  = "canceled"
)

// Job is the persisted and reported record of one /v1/jobs submission.
// Result carries only the deterministic payload (values, best point) so
// a job killed mid-run and resumed after restart reproduces it
// byte-identically; the volatile run diagnostics (wall time, retries,
// cache hits) live in Report.
type Job struct {
	ID     string `json:"id"`
	Tenant string `json:"tenant"`
	// Kind is "sweep" or "aps".
	Kind  string `json:"kind"`
	State string `json:"state"`
	// Attempts counts executions of this job, adoptions included.
	Attempts int `json:"attempts"`
	// Created/Started/Finished are RFC3339Nano wall-clock stamps.
	Created  string `json:"created"`
	Started  string `json:"started,omitempty"`
	Finished string `json:"finished,omitempty"`
	// Request is the submitted work description, verbatim.
	Request json.RawMessage `json:"request"`
	// Progress is the live heartbeat of a running job (poll-time only,
	// never persisted — the checkpoint file is the durable progress).
	Progress *JobProgress `json:"progress,omitempty"`
	// Result is the deterministic final payload of a succeeded job.
	Result json.RawMessage `json:"result,omitempty"`
	// Report is the volatile run diagnostics of a finished sweep/aps job.
	Report *dse.SweepReport `json:"report,omitempty"`
	// Error is the envelope body of a failed job.
	Error *ErrorBody `json:"error,omitempty"`
}

// JobProgress is a running job's heartbeat.
type JobProgress struct {
	// Evaluated counts raw evaluator invocations this attempt (resumed or
	// memoized points cost none).
	Evaluated int64 `json:"evaluated"`
	// Total is the number of points the job covers.
	Total int `json:"total"`
	// ElapsedMS is wall time since this attempt started.
	ElapsedMS int64 `json:"elapsed_ms"`
}

// terminal reports whether state is final.
func terminalJobState(state string) bool {
	return state == JobSucceeded || state == JobFailed || state == JobCanceled
}

// jobIDRx matches generated job IDs ("j" + 16 hex digits); path
// parameters are validated against it before touching the store.
var jobIDRx = regexp.MustCompile(`^j[0-9a-f]{16}$`)

// newJobID draws a fresh random job ID.
func newJobID() (string, error) {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("server: generating job id: %w", err)
	}
	return "j" + hex.EncodeToString(b[:]), nil
}

// jobStore persists one JSON file per job under its directory, written
// with the same durability discipline as sweep checkpoints: unique temp
// file, fsync, rename, directory fsync. Job records are small (the
// request plus the result), so whole-file rewrites are cheap.
type jobStore struct {
	dir string
}

// newJobStore opens (creating) the store directory.
func newJobStore(dir string) (*jobStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("server: creating job directory: %w", err)
	}
	return &jobStore{dir: dir}, nil
}

// path maps a job ID to its record file.
func (st *jobStore) path(id string) string {
	return filepath.Join(st.dir, id+".json")
}

// save durably persists j (atomic whole-file replace).
func (st *jobStore) save(j *Job) error {
	data, err := json.Marshal(j)
	if err != nil {
		return fmt.Errorf("server: encoding job %s: %w", j.ID, err)
	}
	data = append(data, '\n')
	tmp, err := os.CreateTemp(st.dir, j.ID+".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Chmod(0o644); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), st.path(j.ID)); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if d, err := os.Open(st.dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}

// load reads one job record.
func (st *jobStore) load(id string) (*Job, error) {
	data, err := os.ReadFile(st.path(id))
	if err != nil {
		return nil, err
	}
	var j Job
	if err := json.Unmarshal(data, &j); err != nil {
		return nil, fmt.Errorf("server: decoding job %s: %w", id, err)
	}
	return &j, nil
}

// list loads every job record in the store, sorted by creation stamp
// then ID. Unreadable records are skipped, not fatal: one corrupt file
// must not take the whole subsystem down at startup.
func (st *jobStore) list() ([]*Job, error) {
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		return nil, err
	}
	jobs := make([]*Job, 0, len(entries))
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") {
			continue
		}
		id := strings.TrimSuffix(name, ".json")
		if !jobIDRx.MatchString(id) {
			continue
		}
		j, err := st.load(id)
		if err != nil {
			continue
		}
		jobs = append(jobs, j)
	}
	sort.Slice(jobs, func(i, k int) bool {
		if jobs[i].Created != jobs[k].Created {
			return jobs[i].Created < jobs[k].Created
		}
		return jobs[i].ID < jobs[k].ID
	})
	return jobs, nil
}

// delete removes a job record (and its checkpoint file, best effort —
// the caller passes the checkpoint path, empty to skip).
func (st *jobStore) delete(id, checkpoint string) error {
	if err := os.Remove(st.path(id)); err != nil && !os.IsNotExist(err) {
		return err
	}
	if checkpoint != "" {
		_ = os.Remove(checkpoint)
	}
	return nil
}
