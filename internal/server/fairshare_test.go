package server

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestWDRRWeightProportion drives one slot through two saturated queues
// and checks the grant stream follows the 3:1 weight ratio.
func TestWDRRWeightProportion(t *testing.T) {
	f := newFairShare(1, false, 0, 0)
	heavy := testTenant(t, TenantConfig{Name: "heavy", Weight: 3})
	light := testTenant(t, TenantConfig{Name: "light", Weight: 1})

	// Hold the only slot so every waiter queues before dispatch starts.
	hold, err := f.acquire(context.Background(), testTenant(t, TenantConfig{Name: "holder"}))
	if err != nil {
		t.Fatalf("holder acquire: %v", err)
	}

	const perTenant = 40
	grants := make(chan string, 2*perTenant)
	var wg sync.WaitGroup
	for _, ten := range []*tenantState{heavy, light} {
		for i := 0; i < perTenant; i++ {
			wg.Add(1)
			go func(ten *tenantState) {
				defer wg.Done()
				release, err := f.acquire(context.Background(), ten)
				if err != nil {
					t.Errorf("acquire %s: %v", ten.name, err)
					return
				}
				// Capacity 1 serializes grants, so channel order is grant
				// order.
				grants <- ten.name
				release()
			}(ten)
		}
	}
	waitFor(t, "all waiters queued", func() bool { return f.waitingCount() == 2*perTenant })

	hold()
	wg.Wait()
	close(grants)

	// Count the heavy tenant's share of the first half of the grant
	// stream (once the light queue drains, heavy gets everything, which
	// says nothing about fairness).
	window := perTenant // first 40 grants: expect ~30 heavy, ~10 light
	heavyGrants := 0
	seen := 0
	for name := range grants {
		if seen >= window {
			continue
		}
		seen++
		if name == "heavy" {
			heavyGrants++
		}
	}
	// Exact WDRR would grant 30/40 to weight 3; allow slack for the
	// enqueue interleaving of the first round.
	if heavyGrants < 24 || heavyGrants > 36 {
		t.Fatalf("weight-3 tenant got %d of the first %d grants, want ~30 (3:1 ratio)", heavyGrants, window)
	}
}

// TestFairShareIdleTenantShareRedistributed checks a lone backlogged
// tenant receives the full capacity regardless of its weight.
func TestFairShareIdleTenantShareRedistributed(t *testing.T) {
	f := newFairShare(4, false, 0, 0)
	ten := testTenant(t, TenantConfig{Name: "solo", Weight: 1})
	for i := 0; i < 4; i++ {
		if _, err := f.acquire(context.Background(), ten); err != nil {
			t.Fatalf("acquire %d: %v", i, err)
		}
	}
	if f.inUseCount() != 4 {
		t.Fatalf("inUse = %d, want the full capacity 4", f.inUseCount())
	}
}

// TestFairShareTenantQuota checks MaxConcurrent bounds one tenant while
// capacity remains for others.
func TestFairShareTenantQuota(t *testing.T) {
	f := newFairShare(4, true, 8, 8)
	capped := testTenant(t, TenantConfig{Name: "capped", MaxConcurrent: 1})
	other := testTenant(t, TenantConfig{Name: "other"})

	release1, err := f.acquire(context.Background(), capped)
	if err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	// The second capped acquisition must queue even though 3 slots are
	// free...
	got := make(chan struct{})
	go func() {
		rel, err := f.acquire(context.Background(), capped)
		if err != nil {
			t.Errorf("queued acquire: %v", err)
			close(got)
			return
		}
		defer rel()
		close(got)
	}()
	waitFor(t, "capped waiter queued", func() bool { return f.waitingCount() == 1 })

	// ...while another tenant is admitted immediately.
	relOther, err := f.acquire(context.Background(), other)
	if err != nil {
		t.Fatalf("other tenant acquire: %v", err)
	}
	relOther()

	select {
	case <-got:
		t.Fatalf("quota-blocked waiter was granted while the quota was full")
	default:
	}
	release1()
	select {
	case <-got:
	case <-time.After(5 * time.Second):
		t.Fatalf("quota-blocked waiter never granted after release")
	}
}

// TestFairShareTenantQueueBound checks a tenant's MaxQueue sheds only
// that tenant.
func TestFairShareTenantQueueBound(t *testing.T) {
	f := newFairShare(1, true, 100, 100)
	small := testTenant(t, TenantConfig{Name: "small", MaxQueue: 1})
	big := testTenant(t, TenantConfig{Name: "big"})

	hold, err := f.acquire(context.Background(), big)
	if err != nil {
		t.Fatalf("holder: %v", err)
	}
	defer hold()

	// One queued waiter fills small's bound; the second is shed.
	smallCtx, cancelSmall := context.WithCancel(context.Background())
	smallDone := make(chan struct{})
	go func() {
		defer close(smallDone)
		if rel, err := f.acquire(smallCtx, small); err == nil {
			rel()
		}
	}()
	waitFor(t, "small waiter queued", func() bool { return f.waitingCount() == 1 })
	if _, err := f.acquire(context.Background(), small); !errors.Is(err, errSaturated) {
		t.Fatalf("over-bound acquire = %v, want errSaturated", err)
	}
	// The other tenant still queues fine.
	done := make(chan struct{})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		defer close(done)
		if rel, err := f.acquire(ctx, big); err == nil {
			rel()
		}
	}()
	waitFor(t, "big waiter queued", func() bool { return f.waitingCount() == 2 })
	cancel()
	<-done
	cancelSmall()
	<-smallDone
}

// TestFairShareAcquireWaitIgnoresBounds checks the job-runner path waits
// past every shed bound.
func TestFairShareAcquireWaitIgnoresBounds(t *testing.T) {
	f := newFairShare(1, true, 1, 1)
	ten := testTenant(t, TenantConfig{Name: AnonymousTenant})
	hold, err := f.acquire(context.Background(), ten)
	if err != nil {
		t.Fatalf("holder: %v", err)
	}

	// Fill the queue bound, then overflow it with acquireWait: no shed.
	results := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			rel, err := f.acquireWait(context.Background(), ten)
			if err == nil {
				defer rel()
			}
			results <- err
		}()
	}
	waitFor(t, "both waiters queued", func() bool { return f.waitingCount() == 2 })
	hold()
	for i := 0; i < 2; i++ {
		if err := <-results; err != nil {
			t.Fatalf("acquireWait %d: %v", i, err)
		}
	}
}

// TestFairShareGrantRaceHandsSlotOnward covers the cancel-while-granted
// race: when cancellation and grant collide, the slot moves to the next
// waiter instead of leaking.
func TestFairShareGrantRaceHandsSlotOnward(t *testing.T) {
	f := newFairShare(1, true, 8, 8)
	ten := testTenant(t, TenantConfig{Name: AnonymousTenant})
	for round := 0; round < 200; round++ {
		hold, err := f.acquire(context.Background(), ten)
		if err != nil {
			t.Fatalf("round %d holder: %v", round, err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		raced := make(chan error, 1)
		go func() {
			rel, err := f.acquire(ctx, ten)
			if err == nil {
				rel()
			}
			raced <- err
		}()
		waitFor(t, "waiter queued", func() bool { return f.waitingCount() == 1 })
		// Release and cancel as close together as the runtime allows.
		go hold()
		cancel()
		<-raced
		waitFor(t, "slot recovered", func() bool { return f.inUseCount() == 0 && f.waitingCount() == 0 })
	}
}
