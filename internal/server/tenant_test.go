package server

import (
	"math"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestTenantConfigNormalize(t *testing.T) {
	bad := []TenantConfig{
		{},                  // empty name
		{Name: "../escape"}, // path characters
		{Name: "a b"},       // whitespace
		{Name: ".hidden"},   // leading dot
		{Name: "jobs"},      // reserved namespace
		{Name: "ok", MaxConcurrent: -1},
		{Name: "ok", MaxQueue: -2},
		{Name: "ok", RatePerSec: -1},
		{Name: "ok", RatePerSec: math.NaN()},
		{Name: "ok", RatePerSec: math.Inf(1)},
		{Name: "ok", Burst: math.NaN()},
	}
	for _, cfg := range bad {
		if _, err := cfg.normalize(); err == nil {
			t.Errorf("normalize(%+v) accepted an invalid config", cfg)
		}
	}

	n, err := TenantConfig{Name: "acme", RatePerSec: 5}.normalize()
	if err != nil {
		t.Fatalf("normalize: %v", err)
	}
	if n.Weight != DefaultTenantWeight {
		t.Fatalf("weight defaulted to %d, want %d", n.Weight, DefaultTenantWeight)
	}
	if n.Burst != 5 {
		t.Fatalf("burst defaulted to %v, want the rate (5)", n.Burst)
	}
	n, err = TenantConfig{Name: "slow", RatePerSec: 0.25}.normalize()
	if err != nil {
		t.Fatalf("normalize: %v", err)
	}
	if n.Burst != 1 {
		t.Fatalf("burst for sub-1 rate = %v, want the 1-token floor", n.Burst)
	}
}

func TestLoadTenantsFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tenants.json")
	body := `{"tenants":[{"name":"acme","key":"k1","weight":3,"rate_per_sec":2.5},{"name":"guest","key":""}]}`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	configs, err := LoadTenantsFile(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	want := []TenantConfig{
		{Name: "acme", Key: "k1", Weight: 3, RatePerSec: 2.5},
		{Name: "guest"},
	}
	if !reflect.DeepEqual(configs, want) {
		t.Fatalf("loaded %+v, want %+v", configs, want)
	}

	// Unknown fields are config typos, not forward compatibility.
	if err := os.WriteFile(path, []byte(`{"tenants":[{"name":"a","key":"k","rate":5}]}`), 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	if _, err := LoadTenantsFile(path); err == nil {
		t.Fatalf("unknown field accepted")
	}
	if _, err := LoadTenantsFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatalf("missing file accepted")
	}
}

func TestTenantTokenBucket(t *testing.T) {
	ten := testTenant(t, TenantConfig{Name: "acme", RatePerSec: 2, Burst: 2})
	now := time.Unix(1000, 0)

	// The bucket starts full: Burst requests pass, the next is shed with
	// a refill-sized hint.
	for i := 0; i < 2; i++ {
		if ok, _ := ten.allow(now); !ok {
			t.Fatalf("request %d denied with a full bucket", i)
		}
	}
	ok, wait := ten.allow(now)
	if ok {
		t.Fatalf("request beyond burst allowed")
	}
	if wait <= 0 || wait > time.Second {
		t.Fatalf("retry hint %v, want (0, 500ms] scale for rate 2", wait)
	}

	// Half a second refills one token at 2/s.
	if ok, _ := ten.allow(now.Add(500 * time.Millisecond)); !ok {
		t.Fatalf("request denied after refill")
	}
	// A long idle period caps at Burst, not unbounded credit.
	later := now.Add(time.Hour)
	allowed := 0
	for i := 0; i < 5; i++ {
		if ok, _ := ten.allow(later); ok {
			allowed++
		}
	}
	if allowed != 2 {
		t.Fatalf("after idle: %d allowed, want the burst cap 2", allowed)
	}

	// Zero rate means unlimited.
	open := testTenant(t, TenantConfig{Name: "open"})
	for i := 0; i < 100; i++ {
		if ok, _ := open.allow(now); !ok {
			t.Fatalf("unlimited tenant denied")
		}
	}
}

// requestWith builds a GET request carrying the given auth header.
func requestWith(t *testing.T, header, value string) *http.Request {
	t.Helper()
	r, err := http.NewRequest(http.MethodGet, "http://example/readyz", nil)
	if err != nil {
		t.Fatalf("request: %v", err)
	}
	if header != "" {
		r.Header.Set(header, value)
	}
	return r
}

func TestTenantLookup(t *testing.T) {
	ts := newTenants(obs.NewRegistry())

	// Open mode: any key, or none, resolves to the anonymous identity.
	for _, r := range []*http.Request{
		requestWith(t, "", ""),
		requestWith(t, "X-API-Key", "whatever"),
		requestWith(t, "Authorization", "Bearer whatever"),
	} {
		st, err := ts.lookup(r)
		if err != nil || st.name != AnonymousTenant {
			t.Fatalf("open-mode lookup = (%v, %v), want anonymous", st, err)
		}
	}

	if err := ts.set([]TenantConfig{
		{Name: "acme", Key: "secret-a"},
		{Name: "bob", Key: "secret-b"},
	}); err != nil {
		t.Fatalf("set: %v", err)
	}

	st, err := ts.lookup(requestWith(t, "Authorization", "Bearer secret-a"))
	if err != nil || st.name != "acme" {
		t.Fatalf("bearer lookup = (%v, %v), want acme", st, err)
	}
	st, err = ts.lookup(requestWith(t, "X-API-Key", "secret-b"))
	if err != nil || st.name != "bob" {
		t.Fatalf("header lookup = (%v, %v), want bob", st, err)
	}
	// No catch-all: keyless and unknown-key requests are 401s.
	if _, err := ts.lookup(requestWith(t, "", "")); err == nil {
		t.Fatalf("keyless request accepted without a catch-all")
	}
	if _, err := ts.lookup(requestWith(t, "X-API-Key", "stolen")); err == nil {
		t.Fatalf("unknown key accepted")
	}

	// A catch-all entry serves keyless requests.
	if err := ts.set([]TenantConfig{
		{Name: "acme", Key: "secret-a"},
		{Name: "guest"},
	}); err != nil {
		t.Fatalf("set with catch-all: %v", err)
	}
	st, err = ts.lookup(requestWith(t, "", ""))
	if err != nil || st.name != "guest" {
		t.Fatalf("catch-all lookup = (%v, %v), want guest", st, err)
	}
}

func TestSetTenantsValidation(t *testing.T) {
	ts := newTenants(obs.NewRegistry())
	if err := ts.set([]TenantConfig{{Name: "a", Key: "k"}}); err != nil {
		t.Fatalf("set: %v", err)
	}
	cases := [][]TenantConfig{
		{{Name: "a", Key: "k1"}, {Name: "a", Key: "k2"}}, // duplicate name
		{{Name: "a", Key: "k"}, {Name: "b", Key: "k"}},   // duplicate key
		{{Name: "jobs", Key: "k"}},                       // reserved name
		{{Name: "", Key: "k"}},                           // invalid name
	}
	for i, cfgs := range cases {
		if err := ts.set(cfgs); err == nil {
			t.Errorf("case %d: invalid table accepted", i)
		}
	}
	// Failed reloads leave the current table untouched.
	if got := ts.namesSnapshot(); len(got) != 1 || got[0] != "a" {
		t.Fatalf("table after failed reloads = %v, want [a]", got)
	}
}

func TestSetTenantsPreservesLiveState(t *testing.T) {
	ts := newTenants(obs.NewRegistry())
	if err := ts.set([]TenantConfig{{Name: "acme", Key: "k", RatePerSec: 1, Burst: 2}}); err != nil {
		t.Fatalf("set: %v", err)
	}
	st, err := ts.lookup(requestWith(t, "X-API-Key", "k"))
	if err != nil {
		t.Fatalf("lookup: %v", err)
	}
	// Drain the bucket, then reload with a new key and weight.
	now := time.Unix(2000, 0)
	st.allow(now)
	st.allow(now)
	if err := ts.set([]TenantConfig{{Name: "acme", Key: "k2", RatePerSec: 1, Burst: 2, Weight: 7}}); err != nil {
		t.Fatalf("reload: %v", err)
	}
	st2, err := ts.lookup(requestWith(t, "X-API-Key", "k2"))
	if err != nil {
		t.Fatalf("lookup after reload: %v", err)
	}
	if st2 != st {
		t.Fatalf("reload rebuilt the tenant state; bucket level and metrics were lost")
	}
	if st2.config().Weight != 7 {
		t.Fatalf("reload kept the old config (weight %d)", st2.config().Weight)
	}
	// The bucket was empty before the reload and must still be empty:
	// a SIGHUP is not a rate-limit reset.
	if ok, _ := st2.allow(now); ok {
		t.Fatalf("reload refilled the token bucket")
	}
}

func TestAPIKeyExtraction(t *testing.T) {
	cases := []struct {
		header, value, want string
	}{
		{"Authorization", "Bearer abc", "abc"},
		{"Authorization", "bearer abc", "abc"}, // scheme is case-insensitive
		{"Authorization", "Basic abc", ""},
		{"X-API-Key", " abc ", "abc"},
		{"", "", ""},
	}
	for _, tc := range cases {
		if got := apiKey(requestWith(t, tc.header, tc.value)); got != tc.want {
			t.Errorf("apiKey(%s: %q) = %q, want %q", tc.header, tc.value, got, tc.want)
		}
	}
}
