package server

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"sort"
	"sync"

	"repro/internal/cluster"
	"repro/internal/dse"
	"repro/internal/engine"
	"repro/internal/obs"
)

// This file is the server half of the cluster tier (DESIGN.md §15): the
// peer endpoints a remote coordinator calls, and the routing that turns
// a local request into ring-partitioned local + remote work. The
// invariant throughout is graceful-and-never-wrong: any peer failure —
// breaker open, connection refused, short response, mid-sweep death —
// falls back to computing the affected points on the local engine,
// which is bit-identical because every family kernel is deterministic.
// The cluster can lose cache locality, never correctness.

// peerWork wraps an internal peer endpoint: drain rejection, admission
// under the anonymous identity, the per-request deadline, observability
// and panic isolation — but no tenant lookup, because intra-cluster
// traffic carries no API key (the peer endpoints are private-network
// internal, reachable only on the peer listen addresses; see DESIGN.md
// §15). Admission still takes a slot so forwarded work cannot
// oversubscribe a peer past its own gate.
func (s *Server) peerWork(span string, h func(http.ResponseWriter, *http.Request)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			s.errors.Add(1)
			s.obsErrors.Add(1)
			writeErrorBody(w, http.StatusServiceUnavailable,
				ErrorBody{Code: CodeUnavailable, Message: "server is draining"})
			return
		}
		t := s.tenants.anonymous()
		release, err := s.adm.acquire(r.Context(), t)
		if err != nil {
			if err == errSaturated {
				s.shedTenant(w, t, retryAfterSeconds(s.opts.RetryAfter),
					ErrorBody{Code: CodeOverloaded, Message: "admission queue full; retry later"})
				return
			}
			s.errors.Add(1)
			s.obsErrors.Add(1)
			writeError(w, err)
			return
		}
		defer release()
		s.admitted.Add(1)
		s.obsAdmitted.Add(1)
		s.inflight.Add(1)
		defer s.inflight.Done()
		s.obsInflight.Add(1)
		defer s.obsInflight.Add(-1)

		timeout, err := s.requestTimeout(r)
		if err != nil {
			s.errors.Add(1)
			s.obsErrors.Add(1)
			writeErrorBody(w, http.StatusBadRequest, ErrorBody{Code: CodeBadRequest, Message: err.Error()})
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), timeout)
		defer cancel()
		id := s.registerCancel(cancel)
		defer s.unregisterCancel(id)
		ctx = contextWithTenant(ctx, t)
		ctx = obs.ContextWithTracer(ctx, s.tracer)
		ctx = obs.ContextWithMetrics(ctx, s.metrics)
		ctx, sp := s.tracer.Start(ctx, span)
		defer func() {
			if rec := recover(); rec != nil {
				s.panics.Add(1)
				s.obsPanics.Add(1)
				s.errors.Add(1)
				s.obsErrors.Add(1)
				if sp != nil {
					sp.Annotate(obs.S("panic", "true"))
					sp.Finish()
				}
				writeErrorBody(w, http.StatusInternalServerError,
					ErrorBody{Code: CodeInternal, Message: "internal server error"})
				return
			}
			sp.Finish()
		}()
		h(w, r.WithContext(ctx))
	})
}

// --- request routing --------------------------------------------------

// pointGroup is one owner's slice of a request's points.
type pointGroup struct {
	owner string
	idx   []int
}

// partitionPoints splits points by ring ownership: the local indices,
// plus one group per remote owner in first-appearance order (no map
// iteration, so the fan-out order is deterministic).
func (s *Server) partitionPoints(fp string, points [][]float64) (local []int, remote []*pointGroup) {
	groups := make(map[string]*pointGroup)
	for i, p := range points {
		owner, isLocal := s.cluster.Owner(engine.KeyHash(fp, p))
		if isLocal {
			local = append(local, i)
			continue
		}
		g := groups[owner]
		if g == nil {
			g = &pointGroup{owner: owner}
			groups[owner] = g
			remote = append(remote, g)
		}
		g.idx = append(g.idx, i)
	}
	return local, remote
}

// subsetPoints gathers the points at idx.
func subsetPoints(points [][]float64, idx []int) [][]float64 {
	out := make([][]float64, len(idx))
	for k, i := range idx {
		out[k] = points[i]
	}
	return out
}

// streamRouted is EvaluateStream through the cluster tier: locally
// owned points run on the shared engine, remote-owned groups travel to
// their owner's peer-eval endpoint (so the owner's cache serves or
// learns them), and any peer failure recomputes that group locally.
// yield is serialized but may be called from several goroutines' turns;
// with no cluster (or an uncacheable evaluator, which has no ring key)
// the call degrades to plain EvaluateStream.
func (s *Server) streamRouted(ctx context.Context, ev dse.CtxEvaluator, ms ModelSpec, es EvaluatorSpec, points [][]float64, yield func(int, engine.Outcome)) error {
	fp := ""
	if f, ok := ev.(engine.Fingerprinter); ok {
		fp = f.Fingerprint()
	}
	if s.cluster == nil || fp == "" {
		return s.eng.EvaluateStream(ctx, ev, points, yield)
	}
	local, remote := s.partitionPoints(fp, points)
	s.cluster.CountLocal(len(local))
	s.cluster.CountRemote(len(points) - len(local))
	if len(remote) == 0 {
		return s.eng.EvaluateStream(ctx, ev, points, yield)
	}
	rawModel, err := json.Marshal(ms)
	if err != nil {
		return err
	}
	var rawEval json.RawMessage
	if es != (EvaluatorSpec{}) {
		if rawEval, err = json.Marshal(es); err != nil {
			return err
		}
	}

	var mu sync.Mutex
	emit := func(i int, o engine.Outcome) {
		mu.Lock()
		defer mu.Unlock()
		if yield != nil {
			yield(i, o)
		}
	}
	var wg sync.WaitGroup
	if len(local) > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = s.eng.EvaluateStream(ctx, ev, subsetPoints(points, local), func(k int, o engine.Outcome) {
				emit(local[k], o)
			})
		}()
	}
	for _, g := range remote {
		wg.Add(1)
		go func(g *pointGroup) {
			defer wg.Done()
			pts := subsetPoints(points, g.idx)
			outs, err := s.cluster.EvalOnPeer(ctx, g.owner, cluster.PeerEvalRequest{
				Model:     rawModel,
				Evaluator: rawEval,
				Points:    pts,
			})
			if err == nil {
				for k, o := range outs {
					emit(g.idx[k], engine.Outcome{Value: o.Value, CacheHit: o.CacheHit, Err: o.Err})
				}
				return
			}
			if ctx.Err() != nil {
				return // cancelled: unstarted points produce no yield, like EvaluateStream
			}
			// Peer unavailable: graceful, never wrong — the same
			// deterministic kernel computes the group locally.
			s.cluster.CountFallback(len(g.idx))
			_ = s.eng.EvaluateStream(ctx, ev, pts, func(k int, o engine.Outcome) {
				emit(g.idx[k], o)
			})
		}(g)
	}
	wg.Wait()
	return ctx.Err()
}

// --- peer endpoints ---------------------------------------------------

// handlePeerEval evaluates a forwarded point batch on the local engine
// — always locally: a peer-eval request never re-routes, so transient
// ring disagreement between peers cannot ping-pong a batch. Results
// stream back as NDJSON in completion order, values as IEEE-754 bit
// patterns (the coordinator re-sequences by index).
func (s *Server) handlePeerEval(w http.ResponseWriter, r *http.Request) {
	var req cluster.PeerEvalRequest
	if err := decodeJSON(r, &req); err != nil {
		s.fail(w, err)
		return
	}
	if len(req.Points) == 0 {
		s.fail(w, validationf("server: peer-eval carries no points"))
		return
	}
	if len(req.Points) > s.opts.MaxBatchPoints {
		s.fail(w, validationf("server: peer-eval of %d points exceeds the %d-point bound", len(req.Points), s.opts.MaxBatchPoints))
		return
	}
	var ms ModelSpec
	if err := json.Unmarshal(req.Model, &ms); err != nil {
		s.fail(w, validationf("server: peer-eval model spec: %v", err))
		return
	}
	var es EvaluatorSpec
	if len(req.Evaluator) > 0 {
		if err := json.Unmarshal(req.Evaluator, &es); err != nil {
			s.fail(w, validationf("server: peer-eval evaluator spec: %v", err))
			return
		}
	}
	fm, ev, err := s.resolveWork(ms, es)
	if err != nil {
		s.fail(w, err)
		return
	}
	for i, p := range req.Points {
		if err := checkPointDims(fm, p); err != nil {
			s.fail(w, validationf("server: peer-eval point %d: %v", i, err))
			return
		}
	}
	out := newNDJSONWriter(w)
	failures := 0
	_ = s.eng.EvaluateStream(r.Context(), ev, req.Points, func(i int, o engine.Outcome) {
		line := cluster.PeerEvalResult{Index: i, CacheHit: o.CacheHit || o.Shared}
		if o.Err != nil {
			failures++
			line.Error = o.Err.Error()
		} else {
			line.Bits = cluster.FormatBits(o.Value)
		}
		out.Emit(line)
	})
	out.Emit(cluster.PeerEvalSummary{Done: true, Points: len(req.Points), Errors: failures})
}

// handlePeerSweep runs a forwarded sub-sweep without re-partitioning
// (the coordinator already split the slab by ring ownership; a second
// split here could ping-pong under ring disagreement). The wire shape
// is exactly /v1/sweep's.
func (s *Server) handlePeerSweep(w http.ResponseWriter, r *http.Request) {
	s.serveSweep(w, r, false)
}

// --- partitioned sweep ------------------------------------------------

// remoteProgress aggregates the latest progress frame from every
// running sub-sweep, so the coordinator's heartbeat reports cluster-wide
// evaluation counts.
type remoteProgress struct {
	mu    sync.Mutex
	byGrp map[int]int64
}

func newRemoteProgress() *remoteProgress {
	return &remoteProgress{byGrp: make(map[int]int64)}
}

func (p *remoteProgress) set(group int, evaluated int64) {
	p.mu.Lock()
	p.byGrp[group] = evaluated
	p.mu.Unlock()
}

func (p *remoteProgress) total() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	var sum int64
	for _, n := range p.byGrp {
		sum += n
	}
	return sum
}

// subSweepOutcome is one remote partition's merged contribution.
type subSweepOutcome struct {
	group  []int
	values []float64
	report dse.SweepReport
	err    error
}

// clusterSweep is the cluster-partitioned sweep: the flat point slab is
// split by ring ownership, the local share runs through dse.SweepCtx
// (with the request's checkpoint machinery), each remote share fans out
// as a peer sub-sweep whose progress frames merge into rp, and the
// partial values, reports and checkpoints merge back into one result.
// A peer that dies mid-sub-sweep gets its share recomputed locally, so
// the merged result is bit-identical to a single-node run.
func (s *Server) clusterSweep(ctx context.Context, req SweepRequest, space dse.Space, ev dse.CtxEvaluator, opts dse.SweepOptions, rp *remoteProgress) ([]float64, dse.SweepReport, error) {
	fp := ""
	if f, ok := ev.(engine.Fingerprinter); ok {
		fp = f.Fingerprint()
	}
	indices := req.Indices
	if indices == nil {
		indices = make([]int, space.Size())
		for i := range indices {
			indices[i] = i
		}
	}
	if fp == "" {
		return dse.SweepCtx(ctx, ev, space, req.Indices, opts)
	}

	// Partition the slab by ownership of each point's memo key.
	dims := space.Dims()
	slab := make([]float64, 0, len(indices)*dims)
	var localIdx []int
	var remote []*pointGroup
	groups := make(map[string]*pointGroup)
	for _, idx := range indices {
		lo := len(slab)
		slab = space.AppendPoint(slab, idx)
		owner, isLocal := s.cluster.Owner(engine.KeyHash(fp, slab[lo:]))
		if isLocal {
			localIdx = append(localIdx, idx)
			continue
		}
		g := groups[owner]
		if g == nil {
			g = &pointGroup{owner: owner}
			groups[owner] = g
			remote = append(remote, g)
		}
		g.idx = append(g.idx, idx)
	}
	s.cluster.CountLocal(len(localIdx))
	s.cluster.CountRemote(len(indices) - len(localIdx))
	if len(remote) == 0 {
		return dse.SweepCtx(ctx, ev, space, indices, opts)
	}

	if localIdx == nil {
		// nil means "the whole space" to SweepCtx; an empty local
		// partition must sweep nothing.
		localIdx = []int{}
	}
	results := make([]subSweepOutcome, 1+len(remote))
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		values, report, err := dse.SweepCtx(ctx, ev, space, localIdx, opts)
		results[0] = subSweepOutcome{group: localIdx, values: values, report: report, err: err}
	}()
	for gi, g := range remote {
		wg.Add(1)
		go func(slot int, g *pointGroup) {
			defer wg.Done()
			results[slot] = s.subSweep(ctx, req, space, ev, g, slot, rp)
		}(1+gi, g)
	}
	wg.Wait()

	// Merge values and reports. The local partition's values win first
	// (they may include resumed entries); remote partitions fill their
	// own completed indices.
	merged := make([]float64, space.Size())
	for i := range merged {
		merged[i] = math.NaN()
	}
	var rep dse.SweepReport
	rep.Total = len(indices)
	var firstErr error
	for _, sub := range results {
		if sub.values != nil {
			for _, idx := range sub.report.Completed {
				merged[idx] = sub.values[idx]
			}
		}
		rep.Completed = append(rep.Completed, sub.report.Completed...)
		rep.Failed = append(rep.Failed, sub.report.Failed...)
		rep.Retries += sub.report.Retries
		rep.Resumed += sub.report.Resumed
		rep.CacheHits += sub.report.CacheHits
		if sub.err != nil && !isContextErr(sub.err) && firstErr == nil {
			firstErr = sub.err
		}
	}
	sort.Ints(rep.Completed)
	sort.Slice(rep.Failed, func(i, j int) bool { return rep.Failed[i].Index < rep.Failed[j].Index })
	seen := make(map[int]bool, len(rep.Completed))
	for _, idx := range rep.Completed {
		seen[idx] = true
	}
	for _, f := range rep.Failed {
		seen[f.Index] = true
	}
	for _, idx := range indices {
		if !seen[idx] {
			rep.Pending = append(rep.Pending, idx)
		}
	}
	rep.Canceled = ctx.Err() != nil

	// One merged checkpoint supersedes the local partition's partial
	// writes, so a resume after the merge restores the whole cluster's
	// completed set, not just this peer's share.
	if opts.CheckpointPath != "" && firstErr == nil {
		if err := dse.SaveCheckpoint(opts.CheckpointPath, space, merged, rep.Completed); err != nil {
			return merged, rep, err
		}
	}
	if firstErr != nil {
		return merged, rep, firstErr
	}
	return merged, rep, ctx.Err()
}

// subSweep runs one remote partition: a peer-sweep exchange streaming
// progress into rp, falling back to a local sweep of the same indices
// when the peer fails mid-flight.
func (s *Server) subSweep(ctx context.Context, req SweepRequest, space dse.Space, ev dse.CtxEvaluator, g *pointGroup, slot int, rp *remoteProgress) subSweepOutcome {
	sub := SweepRequest{
		Model:         req.Model,
		Evaluator:     req.Evaluator,
		Space:         req.Space,
		Indices:       g.idx,
		IncludeValues: true,
		ProgressMS:    200,
	}
	body, err := json.Marshal(sub)
	if err != nil {
		return subSweepOutcome{group: g.idx, err: err}
	}
	var result *SweepResult
	err = s.cluster.StreamFromPeer(ctx, g.owner, "/internal/v1/peer-sweep", body, func(line []byte) error {
		if line == nil {
			// Attempt boundary: the whole exchange restarts, so drop any
			// partial progress from the previous try.
			rp.set(slot, 0)
			result = nil
			return nil
		}
		var frame struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(line, &frame); err != nil {
			return err
		}
		switch frame.Type {
		case "progress":
			var pr SweepProgress
			if err := json.Unmarshal(line, &pr); err != nil {
				return err
			}
			rp.set(slot, pr.Evaluated)
			return nil
		case "result":
			var res SweepResult
			if err := json.Unmarshal(line, &res); err != nil {
				return err
			}
			result = &res
			return nil
		default:
			return validationf("server: unknown sub-sweep frame type %q", frame.Type)
		}
	})
	switch {
	case err == nil && result != nil && result.Error == nil:
		values := make([]float64, space.Size())
		for i := range values {
			values[i] = math.NaN()
		}
		for i, v := range result.Values {
			if i < len(values) {
				values[i] = float64(v)
			}
		}
		return subSweepOutcome{group: g.idx, values: values, report: result.Report}
	case ctx.Err() != nil:
		// Cancelled: leave the partition pending, exactly like an
		// interrupted local sweep.
		return subSweepOutcome{group: g.idx, err: ctx.Err()}
	}
	// The peer died or answered garbage: recompute this share locally,
	// without the checkpoint path (the coordinator writes the merged
	// checkpoint once at the end).
	s.cluster.CountFallback(len(g.idx))
	fallbackOpts := dse.SweepOptions{Engine: s.eng}
	values, report, err := dse.SweepCtx(ctx, ev, space, g.idx, fallbackOpts)
	return subSweepOutcome{group: g.idx, values: values, report: report, err: err}
}

// isContextErr mirrors handleSweep's classification for the merge: a
// cancelled partition leaves pending work, it is not a request failure.
func isContextErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
