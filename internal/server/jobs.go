package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/aps"
	"repro/internal/dse"
	"repro/internal/obs"
)

// JobSubmitRequest is the body of POST /v1/jobs: exactly one of Sweep or
// APS describes the work. Kind is optional and, when present, must match
// the populated field. Jobs own their checkpoints (one per job ID inside
// JobDir, always resumed), so the inner request must not name one.
type JobSubmitRequest struct {
	Kind  string        `json:"kind,omitempty"`
	Sweep *SweepRequest `json:"sweep,omitempty"`
	APS   *APSRequest   `json:"aps,omitempty"`
}

// JobList is the GET /v1/jobs payload.
type JobList struct {
	Jobs []Job `json:"jobs"`
}

// SweepJobResult is the deterministic final payload of a sweep job:
// identical inputs produce byte-identical bytes whether the job ran
// straight through or was killed and resumed, because every field
// derives from the evaluated values alone (RawValues in the checkpoint
// keep bit identity across restarts).
type SweepJobResult struct {
	BestIndex int         `json:"best_index"`
	BestPoint []float64   `json:"best_point,omitempty"`
	BestValue *jsonFloat  `json:"best_value,omitempty"`
	Values    []jsonFloat `json:"values,omitempty"`
}

// APSJobResult is the deterministic final payload of an APS job (the
// volatile simulation/cache counters live in the job's Report).
type APSJobResult struct {
	Analytic       APSDesign  `json:"analytic"`
	Snapped        []int      `json:"snapped"`
	BestIndex      int        `json:"best_index"`
	BestPoint      []float64  `json:"best_point,omitempty"`
	BestValue      *jsonFloat `json:"best_value,omitempty"`
	AnalyticPoints int        `json:"analytic_points"`
	SpaceSize      int        `json:"space_size"`
}

// jobEntry is one job's in-memory state beside its persisted record.
type jobEntry struct {
	mu         sync.Mutex
	job        Job
	cancel     context.CancelFunc // non-nil while the runner is live
	userCancel bool
	started    time.Time
	total      int
	evaluated  atomic.Int64
}

// snapshot copies the record, attaching live progress while running.
func (e *jobEntry) snapshot() Job {
	e.mu.Lock()
	defer e.mu.Unlock()
	j := e.job
	if j.State == JobRunning {
		j.Progress = &JobProgress{
			Evaluated: e.evaluated.Load(),
			Total:     e.total,
			ElapsedMS: time.Since(e.started).Milliseconds(),
		}
	}
	return j
}

// jobManager owns the /v1/jobs subsystem: the disk store, the in-memory
// entries, and the runner goroutines. Runners take tenant-fair admission
// slots like interactive requests (waiting rather than shedding), so
// background jobs respect the same quotas and cannot starve the
// interactive plane beyond their tenant's share.
type jobManager struct {
	s       *Server
	store   *jobStore
	baseCtx context.Context

	mu      sync.Mutex
	entries map[string]*jobEntry
}

// newJobManager opens the store and loads every persisted record; New
// panics on a store error (construction-time misconfiguration). Call
// adoptOrphans afterwards to restart interrupted work.
func newJobManager(s *Server, dir string) *jobManager {
	store, err := newJobStore(dir)
	if err != nil {
		//lint:allow errwrap construction-time misconfiguration (unusable JobDir), mirrors Options.Tenants
		panic(err)
	}
	// The job plane outlives any request, so its context is the process
	// lifetime; forced drains cancel runners through the server's cancel
	// registry, exactly like streaming requests.
	baseCtx := context.Background() //lint:allow ctxflow the job plane is process-scoped, not request-scoped
	m := &jobManager{s: s, store: store, baseCtx: baseCtx, entries: make(map[string]*jobEntry)}
	jobs, err := store.list()
	if err != nil {
		//lint:allow errwrap construction-time misconfiguration (unreadable JobDir), mirrors Options.Tenants
		panic(err)
	}
	for _, j := range jobs {
		m.entries[j.ID] = &jobEntry{job: *j}
	}
	return m
}

// adoptOrphans restarts every job that was pending or running when the
// previous process died: each resumes from its checkpoint (a missing
// checkpoint file simply restarts the work from zero).
func (m *jobManager) adoptOrphans() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, e := range m.entries {
		if !terminalJobState(e.job.State) {
			go m.run(e)
		}
	}
}

// get returns the entry for id (nil when unknown).
func (m *jobManager) get(id string) *jobEntry {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.entries[id]
}

// checkpointPath is the job's checkpoint file, beside its record.
func (m *jobManager) checkpointPath(id string) string {
	return filepath.Join(m.store.dir, id+".ck")
}

// nowStamp is the wall-clock stamp format of job records.
func nowStamp() string { return time.Now().UTC().Format(time.RFC3339Nano) }

// validateSubmit checks a submission far enough that submit-time errors
// reach the client synchronously instead of surfacing as failed jobs.
func (s *Server) validateSubmit(sub *JobSubmitRequest) (string, error) {
	switch {
	case sub.Sweep != nil && sub.APS != nil:
		return "", validationf("server: job names both sweep and aps; want exactly one")
	case sub.Sweep == nil && sub.APS == nil:
		return "", validationf("server: job names no work; want sweep or aps")
	}
	kind := "sweep"
	if sub.APS != nil {
		kind = "aps"
	}
	if sub.Kind != "" && sub.Kind != kind {
		return "", validationf("server: job kind %q does not match the %s request", sub.Kind, kind)
	}
	if kind == "sweep" {
		req := sub.Sweep
		if req.Checkpoint != "" || req.Resume {
			return "", validationf("server: jobs manage their own checkpoints; drop checkpoint/resume")
		}
		model, err := s.catalog.Resolve(req.Model)
		if err != nil {
			return "", err
		}
		space, err := s.catalog.Space(model, req.Space)
		if err != nil {
			return "", err
		}
		if _, err := s.catalog.Evaluator(model, req.Evaluator); err != nil {
			return "", err
		}
		for _, idx := range req.Indices {
			if idx < 0 || idx >= space.Size() {
				return "", validationf("server: index %d outside space of %d points", idx, space.Size())
			}
		}
		return kind, nil
	}
	req := sub.APS
	if req.Checkpoint != "" || req.Resume {
		return "", validationf("server: jobs manage their own checkpoints; drop checkpoint/resume")
	}
	model, err := s.catalog.Resolve(req.Model)
	if err != nil {
		return "", err
	}
	if _, err := s.catalog.Space(model, req.Space); err != nil {
		return "", err
	}
	if _, err := s.catalog.Evaluator(model, req.Evaluator); err != nil {
		return "", err
	}
	switch req.Metric {
	case "", "time", "time_per_work":
	default:
		return "", validationf("server: unknown metric %q (want time or time_per_work)", req.Metric)
	}
	return kind, nil
}

// handleJobSubmit accepts a job, persists it and starts its runner; the
// 202 response carries the pending record with its ID.
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.errors.Add(1)
		s.obsErrors.Add(1)
		writeErrorBody(w, http.StatusServiceUnavailable,
			ErrorBody{Code: CodeUnavailable, Message: "server is draining"})
		return
	}
	t := tenantFrom(r.Context())
	if ok, wait := t.allow(time.Now()); !ok {
		s.shedTenant(w, t, retryAfterSeconds(wait),
			ErrorBody{Code: CodeRateLimited, Message: "tenant rate limit exceeded; retry later"})
		return
	}
	var sub JobSubmitRequest
	if err := decodeJSON(r, &sub); err != nil {
		s.fail(w, err)
		return
	}
	kind, err := s.validateSubmit(&sub)
	if err != nil {
		s.fail(w, err)
		return
	}
	id, err := newJobID()
	if err != nil {
		s.fail(w, err)
		return
	}
	raw, err := json.Marshal(sub)
	if err != nil {
		s.fail(w, err)
		return
	}
	e := &jobEntry{job: Job{
		ID:      id,
		Tenant:  t.name,
		Kind:    kind,
		State:   JobPending,
		Created: nowStamp(),
		Request: raw,
	}}
	if err := s.jobs.store.save(&e.job); err != nil {
		s.fail(w, err)
		return
	}
	s.jobs.mu.Lock()
	s.jobs.entries[id] = e
	s.jobs.mu.Unlock()
	go s.jobs.run(e)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	_ = json.NewEncoder(w).Encode(e.snapshot())
}

// handleJobList lists the requesting tenant's jobs, oldest first.
func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	t := tenantFrom(r.Context())
	s.jobs.mu.Lock()
	entries := make([]*jobEntry, 0, len(s.jobs.entries))
	for _, e := range s.jobs.entries {
		entries = append(entries, e)
	}
	s.jobs.mu.Unlock()
	resp := JobList{Jobs: make([]Job, 0, len(entries))}
	for _, e := range entries {
		if j := e.snapshot(); j.Tenant == t.name {
			resp.Jobs = append(resp.Jobs, j)
		}
	}
	sortJobs(resp.Jobs)
	writeJSON(w, resp)
}

// sortJobs orders job snapshots by creation stamp then ID.
func sortJobs(jobs []Job) {
	for i := 1; i < len(jobs); i++ {
		for k := i; k > 0 && jobLess(jobs[k], jobs[k-1]); k-- {
			jobs[k], jobs[k-1] = jobs[k-1], jobs[k]
		}
	}
}

func jobLess(a, b Job) bool {
	if a.Created != b.Created {
		return a.Created < b.Created
	}
	return a.ID < b.ID
}

// jobForRequest resolves {id} to the requesting tenant's job; unknown
// IDs and other tenants' jobs are indistinguishable 404s.
func (s *Server) jobForRequest(r *http.Request) (*jobEntry, error) {
	id := r.PathValue("id")
	if !jobIDRx.MatchString(id) {
		return nil, notFoundf("server: unknown job %q", id)
	}
	e := s.jobs.get(id)
	if e == nil {
		return nil, notFoundf("server: unknown job %q", id)
	}
	if e.snapshot().Tenant != tenantFrom(r.Context()).name {
		return nil, notFoundf("server: unknown job %q", id)
	}
	return e, nil
}

// handleJobGet reports one job, with live progress while it runs.
func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	e, err := s.jobForRequest(r)
	if err != nil {
		s.fail(w, err)
		return
	}
	writeJSON(w, e.snapshot())
}

// handleJobResult serves a succeeded job's deterministic result payload
// verbatim; anything not (yet) succeeded is a 409 naming the state.
func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	e, err := s.jobForRequest(r)
	if err != nil {
		s.fail(w, err)
		return
	}
	j := e.snapshot()
	if j.State != JobSucceeded {
		s.fail(w, conflictf("server: job %s is %s, not succeeded", j.ID, j.State))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(j.Result)
}

// handleJobCancel requests cancellation: pending jobs die before
// admission, running jobs are cancelled (flushing their checkpoint on
// the way out). Cancelling a canceled job is idempotent; a succeeded or
// failed job answers 409.
func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	e, err := s.jobForRequest(r)
	if err != nil {
		s.fail(w, err)
		return
	}
	e.mu.Lock()
	switch e.job.State {
	case JobSucceeded, JobFailed:
		state := e.job.State
		e.mu.Unlock()
		s.fail(w, conflictf("server: job is already %s", state))
		return
	case JobCanceled:
		e.mu.Unlock()
	default:
		e.userCancel = true
		if e.cancel != nil {
			e.cancel()
		}
		e.mu.Unlock()
	}
	writeJSON(w, e.snapshot())
}

// handleJobDelete removes a terminal job's record and checkpoint.
func (s *Server) handleJobDelete(w http.ResponseWriter, r *http.Request) {
	e, err := s.jobForRequest(r)
	if err != nil {
		s.fail(w, err)
		return
	}
	j := e.snapshot()
	if !terminalJobState(j.State) {
		s.fail(w, conflictf("server: job %s is %s; cancel it before deleting", j.ID, j.State))
		return
	}
	if err := s.jobs.store.delete(j.ID, s.jobs.checkpointPath(j.ID)); err != nil {
		s.fail(w, err)
		return
	}
	s.jobs.mu.Lock()
	delete(s.jobs.entries, j.ID)
	s.jobs.mu.Unlock()
	w.WriteHeader(http.StatusNoContent)
}

// run executes one job attempt end to end. Interruption semantics: a
// user cancel persists the canceled state; a drain or crash persists
// nothing, leaving the on-disk state running/pending so the next process
// adopts the job and resumes its checkpoint.
func (m *jobManager) run(e *jobEntry) {
	if m.s.draining.Load() {
		return
	}
	t := m.s.tenants.byNameOrAnon(e.job.Tenant)
	ctx := contextWithTenant(m.baseCtx, t)
	ctx = obs.ContextWithTracer(ctx, m.s.tracer)
	ctx = obs.ContextWithMetrics(ctx, m.s.metrics)
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	e.mu.Lock()
	if e.userCancel {
		m.finishLocked(e, JobCanceled)
		e.mu.Unlock()
		return
	}
	e.cancel = cancel
	e.mu.Unlock()
	regID := m.s.registerCancel(cancel)
	defer m.s.unregisterCancel(regID)
	m.s.inflight.Add(1)
	defer m.s.inflight.Done()

	// Jobs wait for their tenant-fair admission slot instead of shedding:
	// the queue is disk-backed, so depth costs nothing but fairness still
	// applies through the same WDRR gate interactive requests use.
	release, err := m.s.adm.acquireWait(ctx, t)
	if err != nil {
		m.interrupt(e)
		return
	}
	defer release()

	e.mu.Lock()
	e.job.State = JobRunning
	e.job.Attempts++
	e.job.Started = nowStamp()
	e.started = time.Now()
	snap := e.job
	e.mu.Unlock()
	if err := m.store.save(&snap); err != nil {
		m.failJob(e, err)
		return
	}

	ctx, sp := m.s.tracer.Start(ctx, "server.job",
		obs.S("job", e.job.ID), obs.S("kind", e.job.Kind), obs.S("tenant", e.job.Tenant))
	var result json.RawMessage
	var report *dse.SweepReport
	switch e.job.Kind {
	case "aps":
		result, report, err = m.runAPS(ctx, e)
	default:
		result, report, err = m.runSweep(ctx, e)
	}
	sp.Finish()
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			m.interrupt(e)
			return
		}
		m.failJob(e, err)
		return
	}
	e.mu.Lock()
	e.job.Result = result
	e.job.Report = report
	m.finishLocked(e, JobSucceeded)
	snap = e.job
	e.mu.Unlock()
	_ = m.store.save(&snap)
}

// finishLocked stamps a terminal state (e.mu held; persistence is the
// caller's).
func (m *jobManager) finishLocked(e *jobEntry, state string) {
	e.job.State = state
	e.job.Finished = nowStamp()
	e.cancel = nil
}

// interrupt resolves a cancelled run: user cancels become terminal and
// persisted, drains leave the disk record untouched for adoption.
func (m *jobManager) interrupt(e *jobEntry) {
	e.mu.Lock()
	if !e.userCancel {
		e.cancel = nil
		e.mu.Unlock()
		return
	}
	m.finishLocked(e, JobCanceled)
	snap := e.job
	e.mu.Unlock()
	_ = m.store.save(&snap)
}

// failJob persists a failed terminal state with the classified envelope.
func (m *jobManager) failJob(e *jobEntry, err error) {
	_, body := classify(err)
	e.mu.Lock()
	e.job.Error = &body
	m.finishLocked(e, JobFailed)
	snap := e.job
	e.mu.Unlock()
	_ = m.store.save(&snap)
}

// runSweep executes a sweep job attempt, always resuming the job's own
// checkpoint (absent on the first attempt: a fresh sweep).
func (m *jobManager) runSweep(ctx context.Context, e *jobEntry) (json.RawMessage, *dse.SweepReport, error) {
	var sub JobSubmitRequest
	if err := json.Unmarshal(e.job.Request, &sub); err != nil || sub.Sweep == nil {
		return nil, nil, validationf("server: job %s carries an unreadable request", e.job.ID)
	}
	req := sub.Sweep
	model, err := m.s.catalog.Resolve(req.Model)
	if err != nil {
		return nil, nil, err
	}
	space, err := m.s.catalog.Space(model, req.Space)
	if err != nil {
		return nil, nil, err
	}
	ev, err := m.s.catalog.Evaluator(model, req.Evaluator)
	if err != nil {
		return nil, nil, err
	}
	ev = wrapEvaluator(ev)
	total := len(req.Indices)
	if total == 0 {
		total = space.Size()
	}
	e.mu.Lock()
	e.total = total
	e.mu.Unlock()

	ck := m.checkpointPath(e.job.ID)
	unlock, err := m.s.lockCheckpoint(ck)
	if err != nil {
		return nil, nil, err
	}
	defer unlock()
	values, report, err := dse.SweepCtx(ctx, withCount(ev, &e.evaluated), space, req.Indices, dse.SweepOptions{
		Engine:          m.s.eng,
		CheckpointPath:  ck,
		CheckpointEvery: req.CheckpointEvery,
		Resume:          true,
	})
	if err != nil {
		return nil, &report, err
	}
	res := SweepJobResult{BestIndex: -1}
	if idx, val := dse.Best(values); idx >= 0 {
		res.BestIndex = idx
		res.BestPoint = space.Point(idx)
		v := jsonFloat(val)
		res.BestValue = &v
	}
	if req.IncludeValues {
		res.Values = jsonFloats(values)
	}
	data, err := json.Marshal(res)
	if err != nil {
		return nil, &report, err
	}
	return data, &report, nil
}

// runAPS executes an APS job attempt.
func (m *jobManager) runAPS(ctx context.Context, e *jobEntry) (json.RawMessage, *dse.SweepReport, error) {
	var sub JobSubmitRequest
	if err := json.Unmarshal(e.job.Request, &sub); err != nil || sub.APS == nil {
		return nil, nil, validationf("server: job %s carries an unreadable request", e.job.ID)
	}
	req := sub.APS
	model, err := m.s.catalog.Resolve(req.Model)
	if err != nil {
		return nil, nil, err
	}
	space, err := m.s.catalog.Space(model, req.Space)
	if err != nil {
		return nil, nil, err
	}
	ev, err := m.s.catalog.Evaluator(model, req.Evaluator)
	if err != nil {
		return nil, nil, err
	}
	ev = wrapEvaluator(ev)
	metric := aps.MetricTime
	if req.Metric == "time_per_work" {
		metric = aps.MetricTimePerWork
	}
	ck := m.checkpointPath(e.job.ID)
	unlock, err := m.s.lockCheckpoint(ck)
	if err != nil {
		return nil, nil, err
	}
	defer unlock()
	res, err := aps.RunCtx(ctx, model, space, withCount(ev, &e.evaluated), aps.Options{
		Engine: m.s.eng,
		Radius: req.Radius,
		Metric: metric,
		Sweep: dse.SweepOptions{
			CheckpointPath: ck,
			Resume:         true,
		},
	})
	if err != nil {
		return nil, nil, err
	}
	out := APSJobResult{
		Analytic: APSDesign{
			N:        res.Analytic.Design.N,
			CoreArea: jsonFloat(res.Analytic.Design.CoreArea),
			L1Area:   jsonFloat(res.Analytic.Design.L1Area),
			L2Area:   jsonFloat(res.Analytic.Design.L2Area),
			Time:     jsonFloat(res.Analytic.Eval.Time),
			Method:   res.Analytic.Method,
			Regime:   int(res.Analytic.Regime),
		},
		Snapped:        res.Snapped,
		BestIndex:      res.BestIdx,
		AnalyticPoints: res.AnalyticPoints,
		SpaceSize:      res.SpaceSize,
	}
	if res.BestIdx >= 0 {
		out.BestPoint = res.BestPoint
		v := jsonFloat(res.BestValue)
		out.BestValue = &v
	}
	data, err := json.Marshal(out)
	if err != nil {
		return nil, &res.Report, err
	}
	return data, &res.Report, nil
}
