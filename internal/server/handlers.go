package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/aps"
	"repro/internal/cluster"
	"repro/internal/dse"
	"repro/internal/engine"
	"repro/internal/model"
	"repro/internal/robust"
)

// maxRequestBody bounds every request body read; the largest legitimate
// payload (a full batch of DefaultMaxBatchPoints six-float points) stays
// well inside it.
const maxRequestBody = 64 << 20

// decodeJSON reads one JSON document from the request into v, rejecting
// trailing garbage and unknown fields so client typos fail loudly.
func decodeJSON(r *http.Request, v interface{}) error {
	dec := json.NewDecoder(io.LimitReader(r.Body, maxRequestBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return validationf("server: decoding request: %v", err)
	}
	if dec.More() {
		return validationf("server: trailing data after JSON document")
	}
	return nil
}

// writeJSON renders v as the 200 response. An encode failure here means
// the client hung up mid-write; the headers are gone, nothing to repair.
func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// --- status plane ---------------------------------------------------

// handleHealthz is pure liveness: the process answers.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = io.WriteString(w, "ok\n")
}

// readyzResponse is the /readyz payload: readiness plus the engine and
// server statistics (stable JSON field names, covered by tests).
type readyzResponse struct {
	Ready  bool            `json:"ready"`
	Server Stats           `json:"server"`
	Engine engine.Snapshot `json:"engine"`
	Models []string        `json:"models"`
	// Tenants lists the configured tenant names (the anonymous identity
	// in open single-tenant mode).
	Tenants []string `json:"tenants,omitempty"`
	// Jobs counts known jobs when /v1/jobs is enabled.
	Jobs int `json:"jobs,omitempty"`
	// Cluster summarizes the peer ring when the server is clustered:
	// membership size, alive/ejected counts and open breakers.
	Cluster *cluster.Summary `json:"cluster,omitempty"`
}

// handleReadyz reports readiness: 200 while serving, 503 once draining,
// both with the full statistics payload so operators see the state that
// produced the answer.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	resp := readyzResponse{
		Ready:   s.Ready(),
		Server:  s.Stats(),
		Engine:  s.eng.Snapshot(),
		Models:  s.catalog.Names(),
		Tenants: s.tenants.namesSnapshot(),
	}
	if s.jobs != nil {
		s.jobs.mu.Lock()
		resp.Jobs = len(s.jobs.entries)
		s.jobs.mu.Unlock()
	}
	if s.cluster != nil {
		sum := s.cluster.Summary()
		resp.Cluster = &sum
	}
	w.Header().Set("Content-Type", "application/json")
	if !resp.Ready {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	_ = json.NewEncoder(w).Encode(resp)
}

// handleMetrics serves the obs registry's Prometheus-style exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.metrics.WriteText(w)
}

// --- single evaluation ----------------------------------------------

// EvaluateRequest asks for one design point's objective value.
type EvaluateRequest struct {
	Model     ModelSpec     `json:"model"`
	Evaluator EvaluatorSpec `json:"evaluator,omitzero"`
	// Point is the six-dimensional design point (A0, A1, A2, N, issue,
	// ROB) in paper order.
	Point []float64 `json:"point"`
}

// EvaluateResponse is one scored point. Value is +Inf for infeasible
// configurations (feasible=false), encoded as the string "+Inf".
type EvaluateResponse struct {
	Value    jsonFloat `json:"value"`
	Feasible bool      `json:"feasible"`
	CacheHit bool      `json:"cache_hit"`
	Shared   bool      `json:"shared"`
	Attempts int       `json:"attempts"`
}

// testWrapEvaluator, when non-nil, wraps every evaluator the server
// resolves — singles, batches, sweeps, APS, and job attempts. Tests
// point it at a fault-injection harness to prove the error envelope
// stays stable when the engine misbehaves; production code never sets
// it.
var testWrapEvaluator func(dse.CtxEvaluator) dse.CtxEvaluator

// wrapEvaluator applies the test fault hook when one is installed.
func wrapEvaluator(ev dse.CtxEvaluator) dse.CtxEvaluator {
	if testWrapEvaluator != nil {
		return testWrapEvaluator(ev)
	}
	return ev
}

// resolveWork builds the (model, evaluator) pair shared by the point
// and batch endpoints, returning the resolved model too so callers can
// validate point dimensionality against its declared space. Every
// family goes through the registry; the c2bound family resolves to the
// original dse.ModelEvaluator with an unchanged fingerprint, so
// catalog/1 clients keep sharing memo entries.
func (s *Server) resolveWork(m ModelSpec, e EvaluatorSpec) (model.Model, dse.CtxEvaluator, error) {
	fm, err := s.catalog.ResolveModel(m)
	if err != nil {
		return nil, nil, err
	}
	ev, err := s.catalog.EvaluatorFamily(fm, e)
	if err != nil {
		return nil, nil, err
	}
	return fm, wrapEvaluator(ev), nil
}

// checkPointDims validates a point's dimensionality against the
// resolved family's declared space, naming the expected dimensions in
// the error.
func checkPointDims(fm model.Model, p []float64) error {
	params := fm.Space().Params
	if len(p) == len(params) {
		return nil
	}
	names := make([]string, len(params))
	for i, pr := range params {
		names[i] = pr.Name
	}
	return validationf("server: point has %d dims, want %d (%s)", len(p), len(params), strings.Join(names, ", "))
}

// handleEvaluate scores one point through the shared engine.
func (s *Server) handleEvaluate(w http.ResponseWriter, r *http.Request) {
	var req EvaluateRequest
	if err := decodeJSON(r, &req); err != nil {
		s.fail(w, err)
		return
	}
	fm, ev, err := s.resolveWork(req.Model, req.Evaluator)
	if err != nil {
		s.fail(w, err)
		return
	}
	if err := checkPointDims(fm, req.Point); err != nil {
		s.fail(w, err)
		return
	}
	// One-point stream rather than Do: the stream path takes the engine's
	// fair-share gate and worker semaphore, so a single-point flood from
	// one tenant cannot crowd the pool any more than a batch can. In a
	// cluster the point may resolve on its ring owner's cache instead.
	var out engine.Outcome
	streamErr := s.streamRouted(r.Context(), ev, req.Model, req.Evaluator, [][]float64{req.Point}, func(_ int, o engine.Outcome) {
		out = o
	})
	if streamErr != nil {
		s.fail(w, streamErr)
		return
	}
	if out.Err != nil {
		s.fail(w, out.Err)
		return
	}
	writeJSON(w, EvaluateResponse{
		Value:    jsonFloat(out.Value),
		Feasible: !math.IsInf(out.Value, 1) && !math.IsNaN(out.Value),
		CacheHit: out.CacheHit,
		Shared:   out.Shared,
		Attempts: out.Attempts,
	})
}

// fail counts and renders an error envelope.
func (s *Server) fail(w http.ResponseWriter, err error) {
	s.errors.Add(1)
	s.obsErrors.Add(1)
	writeError(w, err)
}

// --- batch evaluation ------------------------------------------------

// BatchRequest asks for many points; results stream back as NDJSON in
// submission order.
type BatchRequest struct {
	Model     ModelSpec     `json:"model"`
	Evaluator EvaluatorSpec `json:"evaluator,omitzero"`
	Points    [][]float64   `json:"points"`
}

// BatchResult is one NDJSON line of a batch response.
type BatchResult struct {
	Index    int        `json:"index"`
	Value    *jsonFloat `json:"value,omitempty"`
	CacheHit bool       `json:"cache_hit,omitempty"`
	Shared   bool       `json:"shared,omitempty"`
	Attempts int        `json:"attempts,omitempty"`
	Error    *ErrorBody `json:"error,omitempty"`
}

// BatchSummary is the final NDJSON line of a batch response.
type BatchSummary struct {
	Done      bool         `json:"done"`
	Points    int          `json:"points"`
	CacheHits int          `json:"cache_hits"`
	Errors    int          `json:"errors"`
	Canceled  bool         `json:"canceled,omitempty"`
	ElapsedMS int64        `json:"elapsed_ms"`
	Engine    engine.Stats `json:"engine"`
}

// handleBatch fans the points out through engine.EvaluateStream and
// streams each outcome as one NDJSON line, re-sequenced into submission
// order. Per-point failures are lines with an error field, not request
// failures; the stream always ends with a summary line.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if err := decodeJSON(r, &req); err != nil {
		s.fail(w, err)
		return
	}
	if len(req.Points) == 0 {
		s.fail(w, validationf("server: batch carries no points"))
		return
	}
	if len(req.Points) > s.opts.MaxBatchPoints {
		s.fail(w, validationf("server: batch of %d points exceeds the %d-point bound", len(req.Points), s.opts.MaxBatchPoints))
		return
	}
	fm, ev, err := s.resolveWork(req.Model, req.Evaluator)
	if err != nil {
		s.fail(w, err)
		return
	}
	for i, p := range req.Points {
		if err := checkPointDims(fm, p); err != nil {
			s.fail(w, validationf("server: point %d: %s", i, strings.TrimPrefix(err.Error(), "server: ")))
			return
		}
	}

	start := time.Now()
	stats0 := s.eng.Stats()
	out := newNDJSONWriter(w)
	ordered := newOrderedEmitter(out)
	hits, failures := 0, 0
	streamErr := s.streamRouted(r.Context(), ev, req.Model, req.Evaluator, req.Points, func(i int, o engine.Outcome) {
		line := BatchResult{Index: i, CacheHit: o.CacheHit, Shared: o.Shared, Attempts: o.Attempts}
		if o.Err != nil {
			failures++
			_, body := classify(o.Err)
			line.Error = &body
		} else {
			v := jsonFloat(o.Value)
			line.Value = &v
		}
		if o.CacheHit || o.Shared {
			hits++
		}
		ordered.Add(i, line)
	})
	out.Emit(BatchSummary{
		Done:      true,
		Points:    len(req.Points),
		CacheHits: hits,
		Errors:    failures,
		Canceled:  streamErr != nil,
		ElapsedMS: time.Since(start).Milliseconds(),
		Engine:    s.eng.Stats().Delta(stats0),
	})
}

// --- streaming sweep -------------------------------------------------

// SweepRequest runs a server-side resilient sweep over a space.
type SweepRequest struct {
	Model     ModelSpec     `json:"model"`
	Evaluator EvaluatorSpec `json:"evaluator,omitzero"`
	Space     SpaceSpec     `json:"space"`
	// Indices restricts the sweep to these flat indices (nil: the whole
	// space).
	Indices []int `json:"indices,omitempty"`
	// Checkpoint names a checkpoint file inside the server's checkpoint
	// directory; Resume restores it before sweeping.
	Checkpoint string `json:"checkpoint,omitempty"`
	Resume     bool   `json:"resume,omitempty"`
	// CheckpointEvery is the completed-evaluation cadence between
	// periodic checkpoint writes (0: the sweep default).
	CheckpointEvery int `json:"checkpoint_every,omitempty"`
	// IncludeValues asks for the dense value slice in the result frame.
	IncludeValues bool `json:"include_values,omitempty"`
	// ProgressMS is the progress-frame cadence in milliseconds (0: 500).
	ProgressMS int `json:"progress_ms,omitempty"`
}

// SweepProgress is a periodic NDJSON heartbeat of a running sweep.
type SweepProgress struct {
	Type string `json:"type"` // "progress"
	// Evaluated counts raw evaluator invocations so far (cache hits do
	// not appear here; they cost no evaluation).
	Evaluated int64 `json:"evaluated"`
	Total     int   `json:"total"`
	ElapsedMS int64 `json:"elapsed_ms"`
}

// SweepResult is the final NDJSON frame of a sweep response.
type SweepResult struct {
	Type      string          `json:"type"` // "result"
	Report    dse.SweepReport `json:"report"`
	BestIndex int             `json:"best_index"`
	BestPoint []float64       `json:"best_point,omitempty"`
	BestValue *jsonFloat      `json:"best_value,omitempty"`
	Values    []jsonFloat     `json:"values,omitempty"`
	Error     *ErrorBody      `json:"error,omitempty"`
	Engine    engine.Stats    `json:"engine"`
}

// countingEvaluator wraps an evaluator with a raw-invocation counter for
// per-request progress frames; the fingerprint forwards so memoization
// still applies.
type countingEvaluator struct {
	inner robust.Evaluator
	n     *atomic.Int64
}

func (c countingEvaluator) EvaluateCtx(ctx context.Context, point []float64) (float64, error) {
	c.n.Add(1)
	return c.inner.EvaluateCtx(ctx, point)
}

// Fingerprint implements engine.Fingerprinter by forwarding the wrapped
// evaluator's identity (counting is transparent to memoization).
func (c countingEvaluator) Fingerprint() string {
	if f, ok := c.inner.(engine.Fingerprinter); ok {
		return f.Fingerprint()
	}
	return ""
}

// countingBatchEvaluator additionally forwards the batched path, so
// counting a batch-capable evaluator (the catalog models) does not
// silently demote sweeps to per-point dispatch.
type countingBatchEvaluator struct {
	countingEvaluator
	batch engine.BatchEvaluator
}

func (c countingBatchEvaluator) EvaluateBatch(ctx context.Context, points [][]float64, out []float64) error {
	c.n.Add(int64(len(points)))
	return c.batch.EvaluateBatch(ctx, points, out)
}

// withCount wraps ev with the counter, preserving cacheability — an
// evaluator without a fingerprint stays anonymous (the engine must not
// cache under an empty shared key) — and batch capability.
func withCount(ev dse.CtxEvaluator, n *atomic.Int64) dse.CtxEvaluator {
	if f, ok := ev.(engine.Fingerprinter); ok && f.Fingerprint() != "" {
		if be, ok := ev.(engine.BatchEvaluator); ok {
			return countingBatchEvaluator{
				countingEvaluator: countingEvaluator{inner: ev, n: n},
				batch:             be,
			}
		}
		return countingEvaluator{inner: ev, n: n}
	}
	return robust.EvaluatorFunc(func(ctx context.Context, point []float64) (float64, error) {
		n.Add(1)
		return ev.EvaluateCtx(ctx, point)
	})
}

// handleSweep runs dse.SweepCtx on the shared engine and streams NDJSON:
// progress heartbeats while the sweep runs, then one result frame with
// the structured report (and optionally the dense values). In a cluster
// the sweep is partitioned by ring ownership first (cluster.go).
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	s.serveSweep(w, r, true)
}

// serveSweep is the shared sweep engine behind /v1/sweep (partition =
// true) and /internal/v1/peer-sweep (partition = false: a forwarded
// sub-sweep always evaluates locally, so ring disagreement between peers
// cannot ping-pong work).
func (s *Server) serveSweep(w http.ResponseWriter, r *http.Request, partition bool) {
	var req SweepRequest
	if err := decodeJSON(r, &req); err != nil {
		s.fail(w, err)
		return
	}
	fm, err := s.catalog.ResolveModel(req.Model)
	if err != nil {
		s.fail(w, err)
		return
	}
	var space dse.Space
	if cb, ok := fm.(*model.C2Bound); ok {
		// The paper's family keeps the catalog/1 space semantics exactly
		// (per/params required, dse.ReducedSpace grids).
		space, err = s.catalog.Space(cb.CoreModel(), req.Space)
	} else {
		space, err = s.catalog.SpaceFamily(fm, req.Space)
	}
	if err != nil {
		s.fail(w, err)
		return
	}
	ev, err := s.catalog.EvaluatorFamily(fm, req.Evaluator)
	if err != nil {
		s.fail(w, err)
		return
	}
	ev = wrapEvaluator(ev)
	for _, idx := range req.Indices {
		if idx < 0 || idx >= space.Size() {
			s.fail(w, validationf("server: index %d outside space of %d points", idx, space.Size()))
			return
		}
	}
	ckPath, err := s.checkpointPath(r.Context(), req.Checkpoint)
	if err != nil {
		s.fail(w, err)
		return
	}
	if req.Resume && ckPath == "" {
		s.fail(w, validationf("server: resume requires a checkpoint name"))
		return
	}
	unlock, err := s.lockCheckpoint(ckPath)
	if err != nil {
		s.fail(w, err)
		return
	}
	defer unlock()

	var evaluated atomic.Int64
	counted := withCount(ev, &evaluated)
	opts := dse.SweepOptions{
		Engine:          s.eng,
		CheckpointPath:  ckPath,
		CheckpointEvery: req.CheckpointEvery,
		Resume:          req.Resume,
	}
	total := len(req.Indices)
	if total == 0 {
		total = space.Size()
	}

	cadence := time.Duration(req.ProgressMS) * time.Millisecond
	if cadence <= 0 {
		cadence = 500 * time.Millisecond
	}
	start := time.Now()
	stats0 := s.eng.Stats()
	out := newNDJSONWriter(w)

	type sweepDone struct {
		values []float64
		report dse.SweepReport
		err    error
	}
	doneCh := make(chan sweepDone, 1)
	rp := newRemoteProgress()
	go func() {
		var values []float64
		var report dse.SweepReport
		var err error
		if partition && s.cluster != nil {
			values, report, err = s.clusterSweep(r.Context(), req, space, counted, opts, rp)
		} else {
			values, report, err = dse.SweepCtx(r.Context(), counted, space, req.Indices, opts)
		}
		doneCh <- sweepDone{values: values, report: report, err: err}
	}()

	ticker := time.NewTicker(cadence)
	defer ticker.Stop()
	var done sweepDone
	for waiting := true; waiting; {
		select {
		case done = <-doneCh:
			waiting = false
		case <-ticker.C:
			out.Emit(SweepProgress{
				Type:      "progress",
				Evaluated: evaluated.Load() + rp.total(),
				Total:     total,
				ElapsedMS: time.Since(start).Milliseconds(),
			})
		}
	}

	frame := SweepResult{
		Type:      "result",
		Report:    done.report,
		BestIndex: -1,
		Engine:    s.eng.Stats().Delta(stats0),
	}
	if idx, val := dse.Best(done.values); idx >= 0 {
		frame.BestIndex = idx
		frame.BestPoint = space.Point(idx)
		v := jsonFloat(val)
		frame.BestValue = &v
	}
	if req.IncludeValues {
		frame.Values = jsonFloats(done.values)
	}
	if done.err != nil && !errors.Is(done.err, context.Canceled) {
		_, body := classify(done.err)
		frame.Error = &body
	}
	out.Emit(frame)
}

// --- APS -------------------------------------------------------------

// APSRequest runs the full Analysis-Plus-Simulation flow server-side.
type APSRequest struct {
	Model     ModelSpec     `json:"model"`
	Evaluator EvaluatorSpec `json:"evaluator,omitzero"`
	Space     SpaceSpec     `json:"space"`
	// Radius widens the simulated neighborhood around the analytic
	// optimum (0: the paper's issue×ROB-only slice).
	Radius int `json:"radius,omitempty"`
	// Metric selects the objective: "time" (default) or "time_per_work".
	Metric     string `json:"metric,omitempty"`
	Checkpoint string `json:"checkpoint,omitempty"`
	Resume     bool   `json:"resume,omitempty"`
}

// APSDesign is the analytic solution in response form.
type APSDesign struct {
	N        int       `json:"n"`
	CoreArea jsonFloat `json:"a0"`
	L1Area   jsonFloat `json:"a1"`
	L2Area   jsonFloat `json:"a2"`
	Time     jsonFloat `json:"time"`
	Method   string    `json:"method"`
	Regime   int       `json:"regime"`
}

// APSResponse is the JSON result of an APS run.
type APSResponse struct {
	Analytic       APSDesign       `json:"analytic"`
	Snapped        []int           `json:"snapped"`
	BestIndex      int             `json:"best_index"`
	BestPoint      []float64       `json:"best_point,omitempty"`
	BestValue      *jsonFloat      `json:"best_value,omitempty"`
	Simulations    int             `json:"simulations"`
	AnalyticPoints int             `json:"analytic_points"`
	SpaceSize      int             `json:"space_size"`
	Report         dse.SweepReport `json:"report"`
	Engine         engine.Stats    `json:"engine"`
}

// handleAPS executes aps.RunCtx on the shared engine.
func (s *Server) handleAPS(w http.ResponseWriter, r *http.Request) {
	var req APSRequest
	if err := decodeJSON(r, &req); err != nil {
		s.fail(w, err)
		return
	}
	fm, err := s.catalog.ResolveModel(req.Model)
	if err != nil {
		s.fail(w, err)
		return
	}
	cb, isC2 := fm.(*model.C2Bound)
	if !isC2 {
		s.handleAPSFamily(w, r, fm, req)
		return
	}
	coreModel := cb.CoreModel()
	space, err := s.catalog.Space(coreModel, req.Space)
	if err != nil {
		s.fail(w, err)
		return
	}
	ev, err := s.catalog.Evaluator(coreModel, req.Evaluator)
	if err != nil {
		s.fail(w, err)
		return
	}
	ev = wrapEvaluator(ev)
	var metric aps.Metric
	switch req.Metric {
	case "", "time":
		metric = aps.MetricTime
	case "time_per_work":
		metric = aps.MetricTimePerWork
	default:
		s.fail(w, validationf("server: unknown metric %q (want time or time_per_work)", req.Metric))
		return
	}
	ckPath, err := s.checkpointPath(r.Context(), req.Checkpoint)
	if err != nil {
		s.fail(w, err)
		return
	}
	unlock, err := s.lockCheckpoint(ckPath)
	if err != nil {
		s.fail(w, err)
		return
	}
	defer unlock()
	res, err := aps.RunCtx(r.Context(), coreModel, space, ev, aps.Options{
		Engine: s.eng,
		Radius: req.Radius,
		Metric: metric,
		Sweep: dse.SweepOptions{
			CheckpointPath: ckPath,
			Resume:         req.Resume,
		},
	})
	if err != nil {
		s.fail(w, fmt.Errorf("aps: %w", err))
		return
	}
	resp := APSResponse{
		Analytic: APSDesign{
			N:        res.Analytic.Design.N,
			CoreArea: jsonFloat(res.Analytic.Design.CoreArea),
			L1Area:   jsonFloat(res.Analytic.Design.L1Area),
			L2Area:   jsonFloat(res.Analytic.Design.L2Area),
			Time:     jsonFloat(res.Analytic.Eval.Time),
			Method:   res.Analytic.Method,
			Regime:   int(res.Analytic.Regime),
		},
		Snapped:        res.Snapped,
		BestIndex:      res.BestIdx,
		Simulations:    res.Simulations,
		AnalyticPoints: res.AnalyticPoints,
		SpaceSize:      res.SpaceSize,
		Report:         res.Report,
		Engine:         res.Engine,
	}
	if res.BestIdx >= 0 {
		resp.BestPoint = res.BestPoint
		v := jsonFloat(res.BestValue)
		resp.BestValue = &v
	}
	writeJSON(w, resp)
}

// handleAPSFamily serves /v1/aps for non-C²-Bound families: no analytic
// KKT phase exists for them, so the optimum comes from the exhaustive
// engine-batched grid scan over the family's declared space
// (aps.RunModelCtx). The response keeps the APSResponse shape with the
// analytic block marked "grid" and zero simulations.
func (s *Server) handleAPSFamily(w http.ResponseWriter, r *http.Request, fm model.Model, req APSRequest) {
	if len(req.Space.Params) > 0 {
		s.fail(w, validationf("server: family APS sweeps the family's declared space; use per, not an explicit grid"))
		return
	}
	if req.Metric != "" && req.Metric != "time" {
		s.fail(w, validationf("server: family APS supports only the time metric, got %q", req.Metric))
		return
	}
	if req.Evaluator.Kind != "" && req.Evaluator.Kind != "model" {
		s.fail(w, validationf("server: family APS needs the model evaluator, got %q", req.Evaluator.Kind))
		return
	}
	ckPath, err := s.checkpointPath(r.Context(), req.Checkpoint)
	if err != nil {
		s.fail(w, err)
		return
	}
	unlock, err := s.lockCheckpoint(ckPath)
	if err != nil {
		s.fail(w, err)
		return
	}
	defer unlock()
	res, err := aps.RunModelCtx(r.Context(), fm, aps.ModelOptions{
		Engine: s.eng,
		Per:    req.Space.Per,
		Sweep: dse.SweepOptions{
			CheckpointPath: ckPath,
			Resume:         req.Resume,
		},
	})
	if err != nil {
		s.fail(w, fmt.Errorf("aps: %w", err))
		return
	}
	resp := APSResponse{
		Analytic:       APSDesign{Method: "grid"},
		Snapped:        []int{},
		BestIndex:      res.BestIdx,
		AnalyticPoints: res.SpaceSize,
		SpaceSize:      res.SpaceSize,
		Report:         res.Report,
		Engine:         res.Engine,
	}
	if res.BestIdx >= 0 {
		resp.BestPoint = res.BestPoint
		v := jsonFloat(res.BestValue)
		resp.BestValue = &v
	}
	writeJSON(w, resp)
}

// --- catalog ---------------------------------------------------------

// CatalogParam documents one family parameter on the wire.
type CatalogParam struct {
	Name    string    `json:"name"`
	Lo      jsonFloat `json:"lo"`
	Hi      jsonFloat `json:"hi"`
	Default jsonFloat `json:"default"`
	Doc     string    `json:"doc,omitempty"`
}

// CatalogFamily documents one registered model family on the wire.
type CatalogFamily struct {
	Name   string         `json:"name"`
	Doc    string         `json:"doc,omitempty"`
	Params []CatalogParam `json:"params,omitempty"`
}

// CatalogResponse is the GET /v1/catalog payload: the wire schema, the
// named applications, and every registered model family with its
// documented parameter domains.
type CatalogResponse struct {
	Schema   string          `json:"schema"`
	Apps     []string        `json:"apps"`
	Families []CatalogFamily `json:"families"`
}

// handleCatalog lists the applications and model families a client can
// name in a ModelSpec, with the parameter domains the server validates
// overrides against.
func (s *Server) handleCatalog(w http.ResponseWriter, _ *http.Request) {
	resp := CatalogResponse{
		Schema: CatalogSchema,
		Apps:   s.catalog.Names(),
	}
	for _, name := range s.catalog.Families() {
		f, ok := model.Lookup(name)
		if !ok {
			continue
		}
		cf := CatalogFamily{Name: f.Name, Doc: f.Doc}
		for _, p := range f.Params {
			cf.Params = append(cf.Params, CatalogParam{
				Name:    p.Name,
				Lo:      jsonFloat(p.Lo),
				Hi:      jsonFloat(p.Hi),
				Default: jsonFloat(p.Default),
				Doc:     p.Doc,
			})
		}
		resp.Families = append(resp.Families, cf)
	}
	writeJSON(w, resp)
}
