package c2bound

import (
	"context"

	"repro/internal/aps"
	"repro/internal/chip"
	"repro/internal/dse"
	"repro/internal/model"
)

// Model families (DESIGN.md §14): the pluggable objective contract
// behind every analytic model in the repository. A family is anything
// satisfying FamilyModel — a namespaced Fingerprint, a declared design
// Space and a Compile step returning the batched Kernel — and the whole
// stack (engine memoization, sweeps, APS, the HTTP catalog, figures)
// dispatches through it. Four families ship built-in: c2bound (the
// paper's objective), gpu (the CUDA-core throughput bound), commsync
// (the communication-synchronization Amdahl extension) and sqrtm
// (Ginosar's √m area-speedup law).
type (
	// FamilyModel is the family contract: fingerprint, space, compile.
	FamilyModel = model.Model
	// ModelKernel is a compiled family objective: allocation-free
	// TimeAt/TimeWorkAt, bit-identical to the direct evaluation.
	ModelKernel = model.Kernel
	// ModelFamily describes one registered family: name, doc, parameter
	// domains, constructor.
	ModelFamily = model.Family
	// ModelFamilyParam documents one family parameter (name, inclusive
	// domain, default).
	ModelFamilyParam = model.FamilyParam
	// FamilyConfig is the family-independent construction input: chip,
	// application profile and family parameters.
	FamilyConfig = model.Config
	// ModelSpace declares a family's design-space dimensions.
	ModelSpace = model.Space
	// ModelSpaceParam is one declared dimension: name, domain, grid.
	ModelSpaceParam = model.Param
	// FamilyEvaluator scores any family through the engine: scalar path
	// for single points, compiled kernel for batched planes.
	FamilyEvaluator = dse.FamilyEvaluator
	// FamilyOptimum is the outcome of OptimizeFamily's grid scan.
	FamilyOptimum = aps.ModelResult
)

// Built-in family names.
const (
	FamilyC2Bound  = model.FamilyC2Bound
	FamilyGPU      = model.FamilyGPU
	FamilyCommSync = model.FamilyCommSync
	FamilySqrtM    = model.FamilySqrtM
)

// RegisterFamily adds a model family to the registry, making it
// selectable by name here, in the server catalog and in the CLIs. The
// family's fingerprints must carry the "model/<name>:" namespace — the
// registry enforces it at construction, so no family can collide with
// another's engine cache entries.
func RegisterFamily(f ModelFamily) error { return model.Register(f) }

// Families lists the registered model family names, sorted.
func Families() []string { return model.Names() }

// LookupFamily returns a registered family's descriptor (its documented
// parameters and domains).
func LookupFamily(name string) (ModelFamily, bool) { return model.Lookup(name) }

// ModelOption configures BuildModel.
type ModelOption func(*modelConfig)

type modelConfig struct {
	family string
	chip   chip.Config
	params map[string]float64
}

// WithFamily selects the model family by name (default c2bound).
func WithFamily(name string) ModelOption {
	return func(c *modelConfig) { c.family = name }
}

// WithChipConfig sets the chip budget the family evaluates under
// (default DefaultChip).
func WithChipConfig(cfg ChipConfig) ModelOption {
	return func(c *modelConfig) { c.chip = cfg }
}

// WithFamilyParam sets one family-specific parameter (for example
// "m_fma" for the gpu family). Unknown keys and out-of-domain values
// are rejected by BuildModel against the family's documented domains.
func WithFamilyParam(key string, v float64) ModelOption {
	return func(c *modelConfig) {
		if c.params == nil {
			c.params = map[string]float64{}
		}
		c.params[key] = v
	}
}

// BuildModel constructs a family model for an application profile:
// family parameters are defaulted and domain-validated, and the
// resulting fingerprint is family-namespaced. The zero option set
// builds the paper's c2bound objective on the default chip.
func BuildModel(app App, opts ...ModelOption) (FamilyModel, error) {
	c := modelConfig{family: model.FamilyC2Bound, chip: chip.DefaultConfig()}
	for _, o := range opts {
		if o != nil {
			o(&c)
		}
	}
	return model.New(c.family, model.Config{Chip: c.chip, App: app, Params: c.params})
}

// NewFamilyEvaluator wraps a family model for sweeping: it implements
// CtxEvaluator and the batched engine contract, with the model's own
// namespaced fingerprint as the memo key.
func NewFamilyEvaluator(m FamilyModel) *FamilyEvaluator {
	return dse.NewFamilyEvaluator(m)
}

// FamilyDesignSpace converts a family's declared space into a sweep
// grid, subsampled to at most per values per dimension (per ≤ 0 keeps
// the family's full default grids). For the c2bound family it equals
// ReducedSpace/PaperSpace.
func FamilyDesignSpace(m FamilyModel, per int) (DesignSpace, error) {
	return dse.SpaceFor(m, per)
}

// OptimizeFamily finds the best design of any family by an exhaustive
// engine-batched scan over its declared space (subsampled to per values
// per dimension; per ≤ 0 scans the full grids). The c2bound family
// additionally has the analytic RunAPS flow; this entry point works for
// every family uniformly and honours WithEngine, WithWorkers,
// WithRetry, WithTimeout, WithCheckpoint/WithResume and the
// observability options.
func OptimizeFamily(ctx context.Context, m FamilyModel, per int, opts ...Option) (FamilyOptimum, error) {
	c := newRunConfig(opts)
	return aps.RunModelCtx(c.context(ctx), m, aps.ModelOptions{
		Engine:  c.engineFor(),
		Per:     per,
		Workers: c.workers,
		Sweep: dse.SweepOptions{
			Retry:           c.retry,
			Timeout:         c.timeout,
			CheckpointPath:  c.checkpoint,
			CheckpointEvery: c.every,
			Resume:          c.resume,
			DisableBatch:    c.disableBatch,
		},
	})
}
