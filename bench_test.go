// Benchmarks regenerating every table and figure of the paper's
// evaluation (see DESIGN.md §4 for the experiment index). Each benchmark
// produces the figure's data series through internal/experiments — the
// same code cmd/figures prints — and reports the figure's headline
// quantity as a custom metric so `go test -bench` output doubles as the
// reproduction record.
package c2bound_test

import (
	"fmt"
	"testing"

	"repro/internal/experiments"
	"repro/internal/tablefmt"
)

// BenchmarkFig1CAMATDemo (E1) reproduces the §II-A worked example:
// AMAT = 3.8 and C-AMAT = 1.6 on the five-access Fig. 1 trace.
func BenchmarkFig1CAMATDemo(b *testing.B) {
	var camat float64
	for i := 0; i < b.N; i++ {
		_, p, err := experiments.Fig1Demo()
		if err != nil {
			b.Fatal(err)
		}
		camat = p.CAMAT()
	}
	b.ReportMetric(camat, "C-AMAT")
}

// BenchmarkTable1GFactors (E2) regenerates Table I's g(N) factors.
func BenchmarkTable1GFactors(b *testing.B) {
	var g4 float64
	for i := 0; i < b.N; i++ {
		rows := experiments.Table1G()
		if len(rows.Rows) != 4 {
			b.Fatal("Table I shape")
		}
	}
	g4 = 8 // TMM g(4) = 4^1.5
	b.ReportMetric(g4, "TMM-g(4)")
}

// BenchmarkFig2ConcurrencyIllustration (E3) quantifies the Fig. 2
// work/time picture.
func BenchmarkFig2ConcurrencyIllustration(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		cases, err := experiments.Fig2Illustration(16, 4, 0.05, 0.4, 0.5, 6)
		if err != nil {
			b.Fatal(err)
		}
		speedup = cases[0].Time / cases[2].Time
	}
	b.ReportMetric(speedup, "speedup(p=16,C=4)")
}

// BenchmarkFig7CoreAllocation (E4) runs the multi-application core
// allocation case study.
func BenchmarkFig7CoreAllocation(b *testing.B) {
	var parCores float64
	for i := 0; i < b.N; i++ {
		_, allocs, err := experiments.Fig7CoreAllocation()
		if err != nil {
			b.Fatal(err)
		}
		parCores = float64(allocs[1].Cores)
	}
	b.ReportMetric(parCores, "cores(par-concurrent)")
}

// BenchmarkFig8ScalingFmem03 (E5) generates the W and T series at
// fmem = 0.3 and reports the N=1000 concurrency speedup T(C=1)/T(C=8).
func BenchmarkFig8ScalingFmem03(b *testing.B) {
	b.ReportMetric(scalingRatio(b, experiments.Fig8), "T(C=1)/T(C=8)@N=1000")
}

// BenchmarkFig9ScalingFmem09 (E6) is the fmem = 0.9 counterpart.
func BenchmarkFig9ScalingFmem09(b *testing.B) {
	b.ReportMetric(scalingRatio(b, experiments.Fig9), "T(C=1)/T(C=8)@N=1000")
}

func scalingRatio(b *testing.B, fig func() (*tablefmt.Table, []experiments.ScalingPoint, error)) float64 {
	b.Helper()
	var ratio float64
	for i := 0; i < b.N; i++ {
		_, pts, err := fig()
		if err != nil {
			b.Fatal(err)
		}
		var t1, t8 float64
		for _, p := range pts {
			if p.N == 1000 && p.C == 1 {
				t1 = p.T
			}
			if p.N == 1000 && p.C == 8 {
				t8 = p.T
			}
		}
		ratio = t1 / t8
	}
	return ratio
}

// BenchmarkFig10ThroughputFmem03 (E7) generates the W/T series at
// fmem = 0.3 and reports the core count of the C=1 throughput knee.
func BenchmarkFig10ThroughputFmem03(b *testing.B) {
	b.ReportMetric(throughputKnee(b, experiments.Fig10), "kneeN(C=1)")
}

// BenchmarkFig11ThroughputFmem09 (E8) is the fmem = 0.9 counterpart.
func BenchmarkFig11ThroughputFmem09(b *testing.B) {
	b.ReportMetric(throughputKnee(b, experiments.Fig11), "kneeN(C=1)")
}

func throughputKnee(b *testing.B, fig func() (*tablefmt.Table, []experiments.ScalingPoint, error)) float64 {
	b.Helper()
	var knee float64
	for i := 0; i < b.N; i++ {
		_, pts, err := fig()
		if err != nil {
			b.Fatal(err)
		}
		// Knee: the smallest N reaching ≥ 80% of the C=1 series maximum.
		var maxWT float64
		for _, p := range pts {
			if p.C == 1 && p.WT > maxWT {
				maxWT = p.WT
			}
		}
		knee = 0
		for _, p := range pts {
			if p.C == 1 && p.WT >= 0.8*maxWT {
				knee = float64(p.N)
				break
			}
		}
	}
	return knee
}

// BenchmarkFig12SimulationCounts (E9) runs the full §IV DSE comparison:
// brute-force sweep vs ANN vs APS on the reduced space, reporting each
// method's simulation count. This is the heavyweight benchmark of the
// suite (hundreds of simulator runs per iteration).
func BenchmarkFig12SimulationCounts(b *testing.B) {
	var d experiments.Fig12Data
	for i := 0; i < b.N; i++ {
		var err error
		_, d, err = experiments.Fig12SimulationCounts(experiments.Scale{SpacePer: 3, TotalRefs: 2500})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(d.BruteForceSims), "sims-brute")
	b.ReportMetric(float64(d.ANNSims), "sims-ANN")
	b.ReportMetric(float64(d.APSSims), "sims-APS")
	b.ReportMetric(d.APSRelErr, "APS-rel-err")
}

// BenchmarkFig13APCPerLayer (E10) measures APC at each hierarchy level on
// the simulator and reports the on-chip/off-chip gap for tiledmm.
func BenchmarkFig13APCPerLayer(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		_, data, err := experiments.Fig13APC(experiments.Scale{TotalRefs: 4000})
		if err != nil {
			b.Fatal(err)
		}
		apcs := data["tiledmm"]
		gap = apcs[0] / apcs[2]
	}
	b.ReportMetric(gap, "APC-L1/APC-mem")
}

// BenchmarkAPSAccuracy (E11) isolates the §IV accuracy claims: APS's
// relative error vs the full sweep (paper: 5.96%) and its share of the
// ANN baseline's simulation budget (paper: 16.3%).
func BenchmarkAPSAccuracy(b *testing.B) {
	var d experiments.Fig12Data
	for i := 0; i < b.N; i++ {
		var err error
		_, d, err = experiments.APSAccuracy(experiments.Scale{SpacePer: 3, TotalRefs: 2500})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(d.APSRelErr, "rel-err")
	b.ReportMetric(d.APSShareOfANN, "share-of-ANN")
}

// BenchmarkAblationRegimeSplit (E12) sweeps the g(N) exponent across the
// §III-C boundary and reports the optimal core count on each side.
func BenchmarkAblationRegimeSplit(b *testing.B) {
	var loN, hiN float64
	for i := 0; i < b.N; i++ {
		_, pts, err := experiments.AblationRegimeSplit(nil)
		if err != nil {
			b.Fatal(err)
		}
		loN = float64(pts[0].OptimalN)
		hiN = float64(pts[len(pts)-1].OptimalN)
	}
	b.ReportMetric(loN, "optN(b=0)")
	b.ReportMetric(hiN, "optN(b=2)")
}

// BenchmarkAblationBaselines (E13) contrasts C²-Bound's recommended
// design with Hill-Marty, Sun-Chen and Cassidy-Andreou.
func BenchmarkAblationBaselines(b *testing.B) {
	var c2N float64
	for i := 0; i < b.N; i++ {
		_, rows, err := experiments.AblationBaselines()
		if err != nil {
			b.Fatal(err)
		}
		c2N = float64(rows[0].OptimalN)
	}
	b.ReportMetric(c2N, "optN(C2-Bound)")
}

// BenchmarkExtensionAsymmetric (§VII) compares the best symmetric and
// asymmetric designs, reporting the asymmetric gain at f_seq = 0.3.
func BenchmarkExtensionAsymmetric(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		tb, err := experiments.AsymmetricComparison([]float64{0.3})
		if err != nil {
			b.Fatal(err)
		}
		row := tb.Rows[0]
		if _, err := fmt.Sscanf(row[len(row)-1], "%g", &gain); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(gain, "asym-gain(fseq=0.3)")
}

// BenchmarkExtensionEnergyPareto (§VII) builds the time/energy frontier.
func BenchmarkExtensionEnergyPareto(b *testing.B) {
	var points float64
	for i := 0; i < b.N; i++ {
		_, frontier, err := experiments.EnergyPareto()
		if err != nil {
			b.Fatal(err)
		}
		points = float64(len(frontier))
	}
	b.ReportMetric(points, "frontier-points")
}

// BenchmarkCrossValidation measures the analytic model's rank agreement
// with the simulator (the property APS relies on).
func BenchmarkCrossValidation(b *testing.B) {
	var rho float64
	for i := 0; i < b.N; i++ {
		_, res, err := experiments.CrossValidate(experiments.Scale{TotalRefs: 3000}, 24)
		if err != nil {
			b.Fatal(err)
		}
		rho = res.Spearman
	}
	b.ReportMetric(rho, "spearman")
}

// BenchmarkPrefetchAblation measures the next-line prefetcher's effect.
func BenchmarkPrefetchAblation(b *testing.B) {
	var speed float64
	for i := 0; i < b.N; i++ {
		_, data, err := experiments.PrefetchAblation(experiments.Scale{TotalRefs: 20000})
		if err != nil {
			b.Fatal(err)
		}
		speed = data["stream"][0]
	}
	b.ReportMetric(speed, "stream-speedup")
}

// BenchmarkOnlineAdaptation runs the phase-adaptation experiment and
// reports the adaptive-over-static gain.
func BenchmarkOnlineAdaptation(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		_, res, err := experiments.PhaseAdaptation(experiments.Scale{TotalRefs: 6000})
		if err != nil {
			b.Fatal(err)
		}
		gain = res.Gain
	}
	b.ReportMetric(gain, "adaptive-gain")
}

// BenchmarkInterference measures co-scheduling interference on the
// simulator: the victim's slowdown when sharing L2/DRAM with an
// aggressor.
func BenchmarkInterference(b *testing.B) {
	var slowdown float64
	for i := 0; i < b.N; i++ {
		_, res, err := experiments.CoScheduleInterference(experiments.Scale{TotalRefs: 8000})
		if err != nil {
			b.Fatal(err)
		}
		slowdown = res.Slowdown
	}
	b.ReportMetric(slowdown, "victim-slowdown")
}
