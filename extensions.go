package c2bound

import (
	"repro/internal/adapt"
	"repro/internal/camat"
	"repro/internal/core"
)

// §VII extensions: asymmetric/dynamic CMP DSE, energy-aware
// multi-objective optimization, the generalized parallelism-profile
// objective, and the recursive multi-level C-AMAT.

type (
	// AsymModel is the asymmetric-CMP variant of Model.
	AsymModel = core.AsymModel
	// AsymDesign is one asymmetric design point (big core + N small).
	AsymDesign = core.AsymDesign
	// AsymEval is an evaluated asymmetric design.
	AsymEval = core.AsymEval

	// PowerModel is the first-order CMP power model.
	PowerModel = core.PowerModel
	// EnergyEval extends Eval with power/energy/EDP terms.
	EnergyEval = core.EnergyEval
	// EnergyObjective selects the energy target (MinEnergy/MinEDP/MinED2P).
	EnergyObjective = core.EnergyObjective
	// ParetoPoint is one non-dominated (time, energy) design.
	ParetoPoint = core.ParetoPoint

	// DOPPhase is one entry of a degree-of-parallelism profile.
	DOPPhase = core.DOPPhase

	// CAMATHierarchy evaluates the recursive multi-level C-AMAT.
	CAMATHierarchy = camat.Hierarchy
	// CAMATLevel is one level of a CAMATHierarchy.
	CAMATLevel = camat.LevelParams
)

// Energy objective values.
const (
	MinEnergy = core.MinEnergy
	MinEDP    = core.MinEDP
	MinED2P   = core.MinED2P
)

// DefaultPowerModel returns 22 nm-class power constants.
func DefaultPowerModel() PowerModel { return core.DefaultPowerModel() }

// TwoPhaseProfile builds the classic (f_seq, N) parallelism profile.
func TwoPhaseProfile(fseq float64, n int) []DOPPhase { return core.TwoPhaseProfile(fseq, n) }

// ValidateProfile checks a degree-of-parallelism profile.
func ValidateProfile(profile []DOPPhase) error { return core.ValidateProfile(profile) }

// Online adaptation (§IV-§V "reconfigurable hardware or management
// software"): phase detection from detector counters and C²-Bound-driven
// reconfiguration.

type (
	// WindowStats is one measurement interval from the lightweight
	// counters.
	WindowStats = adapt.WindowStats
	// PhaseDetector flags C-AMAT parameter drift.
	PhaseDetector = adapt.PhaseDetector
	// AdaptController re-optimizes on phase changes.
	AdaptController = adapt.Controller
	// AdaptDecision is one controller step's outcome.
	AdaptDecision = adapt.Decision
)

// CachePartition is one application's share of a partitioned shared
// cache (the paper's "partitioning … resources among diverse
// applications").
type CachePartition = core.CachePartition

// PartitionCache divides a shared LLC among co-scheduled applications by
// greedy marginal utility on the C-AMAT-weighted stall term.
func PartitionCache(cfg ChipConfig, apps []App, totalKB, granKB float64) ([]CachePartition, error) {
	return core.PartitionCache(cfg, apps, totalKB, granKB)
}
