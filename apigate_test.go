// The API surface gate: api.txt is the checked-in golden of the exported
// façade, regenerated with `go test -run TestAPISurface -update-api .`,
// and any unreviewed drift of the public API fails the build. The
// surface is derived from the AST (bodies stripped, one normalized line
// per exported declaration) so the golden is stable across toolchain
// versions.
package c2bound_test

import (
	"bytes"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"sort"
	"strings"
	"testing"
)

var updateAPI = flag.Bool("update-api", false, "rewrite api.txt from the current source")

func TestAPISurface(t *testing.T) {
	got, err := apiSurface(".")
	if err != nil {
		t.Fatalf("deriving the API surface: %v", err)
	}
	if *updateAPI {
		if err := os.WriteFile("api.txt", []byte(got), 0o644); err != nil {
			t.Fatalf("writing api.txt: %v", err)
		}
		t.Logf("api.txt updated (%d lines)", strings.Count(got, "\n"))
		return
	}
	wantBytes, err := os.ReadFile("api.txt")
	if err != nil {
		t.Fatalf("reading api.txt (regenerate with -update-api): %v", err)
	}
	want := string(wantBytes)
	if got == want {
		return
	}
	gotSet := toSet(got)
	wantSet := toSet(want)
	for line := range wantSet {
		if !gotSet[line] {
			t.Errorf("removed from API: %s", line)
		}
	}
	for line := range gotSet {
		if !wantSet[line] {
			t.Errorf("added to API (update api.txt if intended): %s", line)
		}
	}
	if !t.Failed() {
		t.Error("api.txt out of date (ordering changed); regenerate with -update-api")
	}
}

func toSet(s string) map[string]bool {
	set := map[string]bool{}
	for _, line := range strings.Split(strings.TrimSpace(s), "\n") {
		if line != "" {
			set[line] = true
		}
	}
	return set
}

// apiSurface renders every exported package-level declaration of the
// façade package in dir as one normalized line, sorted.
func apiSurface(dir string) (string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		return "", err
	}
	pkg, ok := pkgs["c2bound"]
	if !ok {
		return "", fmt.Errorf("no c2bound package in %s (found %v)", dir, pkgs)
	}
	var lines []string
	emit := func(node interface{}) error {
		var buf bytes.Buffer
		if err := printer.Fprint(&buf, fset, node); err != nil {
			return err
		}
		lines = append(lines, strings.Join(strings.Fields(buf.String()), " "))
		return nil
	}
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() || !exportedRecv(d) {
					continue
				}
				fn := *d
				fn.Doc = nil
				fn.Body = nil
				if err := emit(&fn); err != nil {
					return "", err
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					if !exportedSpec(spec) {
						continue
					}
					one := &ast.GenDecl{Tok: d.Tok, Specs: []ast.Spec{spec}}
					if err := emit(one); err != nil {
						return "", err
					}
				}
			}
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n") + "\n", nil
}

// exportedRecv accepts plain functions and methods on exported types.
func exportedRecv(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	id, ok := t.(*ast.Ident)
	return ok && id.IsExported()
}

func exportedSpec(spec ast.Spec) bool {
	switch s := spec.(type) {
	case *ast.TypeSpec:
		return s.Name.IsExported()
	case *ast.ValueSpec:
		for _, n := range s.Names {
			if n.IsExported() {
				return true
			}
		}
	}
	return false
}
