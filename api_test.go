// Tests of the public facade: every re-exported entry point must be
// reachable and consistent with the underlying implementation.
package c2bound_test

import (
	"bytes"
	"context"
	"math"
	"strings"
	"testing"

	c2bound "repro"
)

func TestFacadeCAMAT(t *testing.T) {
	an, err := c2bound.Analyze(c2bound.Fig1Trace())
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	p := an.Params()
	if math.Abs(p.CAMAT()-1.6) > 1e-12 {
		t.Fatalf("C-AMAT = %v", p.CAMAT())
	}
	ser := c2bound.SerializeTrace(c2bound.Fig1Trace())
	anSer, err := c2bound.Analyze(ser)
	if err != nil {
		t.Fatalf("Analyze serialized: %v", err)
	}
	if anSer.Params().Concurrency() > 1+1e-9 {
		t.Fatal("serialized trace still concurrent")
	}
	det := c2bound.NewDetector()
	for _, a := range c2bound.Fig1Trace() {
		det.Record(a.Start, a.HitCycles, int64(a.MissPenalty))
	}
	if got := det.Params().CAMAT(); math.Abs(got-1.6) > 1e-12 {
		t.Fatalf("detector C-AMAT = %v", got)
	}
}

func TestFacadeSpeedupLaws(t *testing.T) {
	if got := c2bound.Amdahl(0.5, 1e9); math.Abs(got-2) > 1e-6 {
		t.Fatalf("Amdahl limit = %v", got)
	}
	if got := c2bound.Gustafson(0.5, 10); got != 5.5 {
		t.Fatalf("Gustafson = %v", got)
	}
	if got := c2bound.SunNi(0.5, c2bound.Linear(), 10); got != 5.5 {
		t.Fatalf("SunNi(g=N) = %v", got)
	}
	if got := c2bound.SunNi(0.5, c2bound.FixedSize(), 10); math.Abs(got-c2bound.Amdahl(0.5, 10)) > 1e-12 {
		t.Fatalf("SunNi(g=1) = %v", got)
	}
	if got := c2bound.PowerLaw(1.5)(4); got != 8 {
		t.Fatalf("PowerLaw = %v", got)
	}
	g, err := c2bound.GFromComplexity(
		func(n float64) float64 { return 2 * n * n * n },
		func(n float64) float64 { return 3 * n * n }, 64)
	if err != nil {
		t.Fatalf("GFromComplexity: %v", err)
	}
	if got := g(4); math.Abs(got-8) > 1e-6 {
		t.Fatalf("derived g(4) = %v", got)
	}
	rows := c2bound.Table1(1 << 20)
	if len(rows) != 4 {
		t.Fatalf("Table1 rows = %d", len(rows))
	}
}

func TestFacadeModelOptimize(t *testing.T) {
	m := c2bound.Model{Chip: c2bound.DefaultChip(), App: c2bound.FluidanimateApp()}
	res, err := m.Optimize(c2bound.OptimizeOptions{MaxN: 64})
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if res.Design.N < 1 || res.Eval.Throughput <= 0 {
		t.Fatalf("degenerate result %+v", res.Design)
	}
	if res.Regime != c2bound.MaximizeThroughput {
		t.Fatalf("regime = %v", res.Regime)
	}
	for _, preset := range []c2bound.App{
		c2bound.TMMApp(), c2bound.StencilApp(), c2bound.FFTApp(), c2bound.FluidanimateApp(),
	} {
		if err := preset.Validate(); err != nil {
			t.Errorf("preset %s invalid: %v", preset.Name, err)
		}
	}
}

func TestFacadeAllocateCores(t *testing.T) {
	apps := []c2bound.App{c2bound.StencilApp(), c2bound.TMMApp()}
	allocs, err := c2bound.AllocateCores(c2bound.DefaultChip(), apps, 16)
	if err != nil {
		t.Fatalf("AllocateCores: %v", err)
	}
	total := 0
	for _, al := range allocs {
		total += al.Cores
	}
	if total > 16 {
		t.Fatalf("allocated %d of 16", total)
	}
}

func TestFacadeSimulator(t *testing.T) {
	res, err := c2bound.RunWorkload(c2bound.DefaultMachine(2), "stencil", 1<<20, 2, 5000, 1)
	if err != nil {
		t.Fatalf("RunWorkload: %v", err)
	}
	if res.CPI <= 0 {
		t.Fatalf("CPI = %v", res.CPI)
	}
	// Generator-based path.
	g, err := c2bound.NewGenerator("stream", 1<<20, 2, 1)
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	traces := [][]c2bound.Ref{c2bound.TakeRefs(g, 1000), c2bound.TakeRefs(g, 1000)}
	res2, err := c2bound.RunMachine(c2bound.DefaultMachine(2), traces)
	if err != nil {
		t.Fatalf("RunMachine: %v", err)
	}
	if res2.MemAccesses != 2000 {
		t.Fatalf("accesses = %d", res2.MemAccesses)
	}
	if len(c2bound.Workloads()) < 7 {
		t.Fatal("workload list too short")
	}
}

func TestFacadeDSEAndAPS(t *testing.T) {
	chipCfg := c2bound.DefaultChip()
	space, err := c2bound.ReducedSpace(chipCfg, 3)
	if err != nil {
		t.Fatalf("ReducedSpace: %v", err)
	}
	if full, err := c2bound.PaperSpace(chipCfg); err != nil || full.Size() != 1000000 {
		t.Fatalf("PaperSpace: %v %d", err, full.Size())
	}
	// Cheap evaluator through the facade types.
	eval := c2bound.EvaluatorFunc(func(p []float64) float64 {
		return 1000/p[3] + p[0] + 100/p[5] + 10/p[4] + 1/p[1] + 1/p[2]
	})
	values, report, err := c2bound.Sweep(context.Background(), c2bound.AdaptEvaluator(eval), space, c2bound.WithWorkers(2))
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	if len(values) != space.Size() || len(report.Completed) != space.Size() {
		t.Fatalf("sweep size = %d, completed = %d", len(values), len(report.Completed))
	}
	// The deprecated wrapper must agree with the v2 path.
	legacy := c2bound.SweepSpace(eval, space, 2)
	for i := range values {
		if values[i] != legacy[i] {
			t.Fatalf("Sweep and SweepSpace disagree at %d: %v vs %v", i, values[i], legacy[i])
		}
	}
	app := c2bound.FluidanimateApp()
	app.G = c2bound.FixedSize()
	app.GOrder = 0
	m := c2bound.Model{Chip: chipCfg, App: app}
	res, err := c2bound.RunAPS(context.Background(), m, space, c2bound.AdaptEvaluator(eval),
		c2bound.WithOptimize(c2bound.OptimizeOptions{MaxN: 64}))
	if err != nil {
		t.Fatalf("RunAPS: %v", err)
	}
	if res.Simulations != 9 {
		t.Fatalf("APS sims = %d, want 3x3", res.Simulations)
	}
}

func TestFacadeV2Options(t *testing.T) {
	chipCfg := c2bound.DefaultChip()
	space, err := c2bound.ReducedSpace(chipCfg, 3)
	if err != nil {
		t.Fatalf("ReducedSpace: %v", err)
	}
	eval := c2bound.EvaluatorFunc(func(p []float64) float64 {
		return 1000/p[3] + p[0] + 100/p[5] + 10/p[4] + 1/p[1] + 1/p[2]
	})
	app := c2bound.FluidanimateApp()
	app.G = c2bound.FixedSize()
	app.GOrder = 0
	m := c2bound.Model{Chip: chipCfg, App: app}

	tracer := c2bound.NewTracer(1 << 12)
	metrics := c2bound.NewMetrics()
	eng := c2bound.NewEngine(c2bound.EngineOptions{Workers: 2, Tracer: tracer, Metrics: metrics})
	res, err := c2bound.RunAPS(context.Background(), m, space, c2bound.AdaptEvaluator(eval),
		c2bound.WithEngine(eng),
		c2bound.WithTracer(tracer),
		c2bound.WithMetrics(metrics),
		c2bound.WithOptimize(c2bound.OptimizeOptions{MaxN: 64}))
	if err != nil {
		t.Fatalf("RunAPS: %v", err)
	}
	if res.BestIdx < 0 {
		t.Fatalf("no best point: %+v", res)
	}

	// The engine counters in the registry must match the engine's own
	// stats, and the run must have produced the staged spans.
	if got, want := metrics.Counter("engine_requests_total").Value(), eng.Stats().Requests; got != want {
		t.Fatalf("engine_requests_total = %d, engine.Stats().Requests = %d", got, want)
	}
	names := map[string]bool{}
	for _, sp := range tracer.Snapshot() {
		names[sp.Name] = true
	}
	for _, want := range []string{"aps.run", "aps.optimize", "aps.grid-snap", "aps.slice", "dse.sweep", "engine.eval"} {
		if !names[want] {
			t.Fatalf("missing span %q in %v", want, names)
		}
	}
	var buf bytes.Buffer
	if err := metrics.WriteText(&buf); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	if !strings.Contains(buf.String(), "aps_runs_total 1") {
		t.Fatalf("exposition missing aps_runs_total:\n%s", buf.String())
	}

	// Optimize v2 with a private caching engine.
	optRes, err := c2bound.Optimize(context.Background(), m,
		c2bound.WithCacheSize(1<<12),
		c2bound.WithOptimize(c2bound.OptimizeOptions{MaxN: 64}))
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if optRes.Design.N < 1 {
		t.Fatalf("degenerate optimize result %+v", optRes.Design)
	}
}

func TestFacadeBaselines(t *testing.T) {
	s, err := c2bound.HillMartySymmetric(0.2, 64, 4)
	if err != nil || s <= 1 {
		t.Fatalf("HillMartySymmetric: %v %v", s, err)
	}
	if _, err := c2bound.HillMartyAsymmetric(0.2, 64, 8); err != nil {
		t.Fatalf("asymmetric: %v", err)
	}
	if _, err := c2bound.HillMartyDynamic(0.2, 64, 64); err != nil {
		t.Fatalf("dynamic: %v", err)
	}
	sc, err := c2bound.SunChen(0.2, 64, 4, c2bound.Linear())
	if err != nil || sc <= s {
		t.Fatalf("SunChen %v not above fixed-size Hill-Marty %v (%v)", sc, s, err)
	}
	tt, err := c2bound.CassidyAndreou(0.5, 0.3, 4, 0.1, 16)
	if err != nil || tt <= 0 {
		t.Fatalf("CassidyAndreou: %v %v", tt, err)
	}
}

func TestFacadeChipModel(t *testing.T) {
	cfg := c2bound.DefaultChip()
	d := c2bound.Design{N: 8, CoreArea: 4, L1Area: 1, L2Area: 4}
	if err := cfg.CheckFeasible(d); err != nil {
		t.Fatalf("feasible design rejected: %v", err)
	}
	if cfg.CPIExe(d) <= 0 {
		t.Fatal("CPI_exe")
	}
	curve := c2bound.MissRateCurve{Base: 0.1, RefKB: 32, Alpha: 0.5}
	if got := curve.At(128); math.Abs(got-0.05) > 1e-12 {
		t.Fatalf("miss curve = %v", got)
	}
	p := c2bound.Pollack{K0: 1, Phi0: 0.2}
	if got := p.CPIExe(4); got != 0.7 {
		t.Fatalf("Pollack = %v", got)
	}
}

func TestFacadeExtensions(t *testing.T) {
	app := c2bound.FluidanimateApp()
	app.G = c2bound.FixedSize()
	app.GOrder = 0
	m := c2bound.Model{Chip: c2bound.DefaultChip(), App: app}

	// Energy.
	pm := c2bound.DefaultPowerModel()
	d, e, err := m.OptimizeEnergy(pm, c2bound.MinEDP, c2bound.OptimizeOptions{MaxN: 32})
	if err != nil {
		t.Fatalf("OptimizeEnergy: %v", err)
	}
	if d.N < 1 || e.EDP <= 0 {
		t.Fatalf("degenerate energy result %+v", d)
	}
	frontier, err := m.ParetoFrontier(pm, c2bound.OptimizeOptions{MaxN: 32})
	if err != nil || len(frontier) == 0 {
		t.Fatalf("ParetoFrontier: %v (%d)", err, len(frontier))
	}

	// Asymmetric.
	am := c2bound.AsymModel{Chip: m.Chip, App: m.App}
	ad, ae, err := am.OptimizeAsym(c2bound.OptimizeOptions{MaxN: 32})
	if err != nil {
		t.Fatalf("OptimizeAsym: %v", err)
	}
	if ad.BigArea <= 0 || ae.Time <= 0 {
		t.Fatalf("degenerate asym result %+v", ad)
	}

	// Generalized objective.
	profile := c2bound.TwoPhaseProfile(0.1, 16)
	if err := c2bound.ValidateProfile(profile); err != nil {
		t.Fatalf("ValidateProfile: %v", err)
	}
	tg, err := m.TimeGeneralized(c2bound.Design{N: 16, CoreArea: 4, L1Area: 1, L2Area: 4}, profile)
	if err != nil || tg <= 0 {
		t.Fatalf("TimeGeneralized: %v %v", tg, err)
	}

	// Multi-level C-AMAT.
	h := c2bound.CAMATHierarchy{
		Levels: []c2bound.CAMATLevel{
			{H: 3, CH: 2, CM: 2, PMR: 0.1, Kappa: 1, Amplification: 1},
			{H: 12, CH: 1.5, CM: 3, PMR: 0.3, Kappa: 1, Amplification: 1},
		},
		MemLatency: 200,
	}
	v, err := h.CAMAT()
	if err != nil || v <= 0 {
		t.Fatalf("hierarchy CAMAT: %v %v", v, err)
	}
}

func TestFacadePartitionAndMixed(t *testing.T) {
	parts, err := c2bound.PartitionCache(c2bound.DefaultChip(),
		[]c2bound.App{c2bound.StencilApp(), c2bound.TMMApp()}, 2048, 128)
	if err != nil {
		t.Fatalf("PartitionCache: %v", err)
	}
	if len(parts) != 2 || parts[0].CapacityKB <= 0 {
		t.Fatalf("partition result %+v", parts)
	}
}
